// Command mrmlint runs the repository's numerical-hygiene analyzers (see
// internal/lint) over module packages and reports findings with file:line
// positions. It exits 0 when clean, 1 when there are findings and 2 on
// usage or load errors.
//
//	mrmlint ./...                     # whole module
//	mrmlint -disable=bannedcall ./internal/...
//	mrmlint -enable=floatcmp,aliasret ./internal/sparse
//	mrmlint -list                     # describe the analyzers
//
// Findings are suppressed case by case with a comment on (or directly
// above) the flagged line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/performability/csrl/internal/lint"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("mrmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list the analyzers and exit")
		enable  = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = fs.String("disable", "", "comma-separated analyzers to skip")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: mrmlint [-list] [-enable=a,b] [-disable=a,b] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}
	n, err := lintPackages(stdout, cwd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}
	if n > 0 {
		fmt.Fprintf(stderr, "mrmlint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// lintPackages loads every package matched by patterns (relative to dir)
// and returns the number of findings printed.
func lintPackages(stdout io.Writer, dir string, patterns []string, analyzers []*lint.Analyzer) (int, error) {
	loader, err := lint.NewLoader(dir)
	if err != nil {
		return 0, err
	}
	dirs, err := loader.Expand(dir, patterns)
	if err != nil {
		return 0, err
	}
	if len(dirs) == 0 {
		return 0, fmt.Errorf("no packages match %s", strings.Join(patterns, " "))
	}
	runner := lint.NewRunner(analyzers)
	total := 0
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			return 0, err
		}
		diags, err := runner.RunPackage(pkg)
		if err != nil {
			return 0, err
		}
		for _, diag := range diags {
			fmt.Fprintln(stdout, diag)
		}
		total += len(diags)
	}
	return total, nil
}

// selectAnalyzers applies the -enable/-disable flags to the registry.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer)
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	parse := func(list string) (map[string]bool, error) {
		set := make(map[string]bool)
		if list == "" {
			return set, nil
		}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if byName[name] == nil {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(known, ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if len(on) > 0 && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("flag selection leaves no analyzers enabled")
	}
	return out, nil
}
