// Command mrmlint runs the repository's numerical-hygiene analyzers (see
// internal/lint) over module packages and reports findings with file:line
// positions. It exits 0 when clean, 1 when there are findings and 2 on
// usage or load errors.
//
//	mrmlint ./...                     # whole module
//	mrmlint -disable=bannedcall ./internal/...
//	mrmlint -enable=floatcmp,aliasret ./internal/sparse
//	mrmlint -json ./...               # one JSON object per finding
//	mrmlint -github ./...             # GitHub Actions ::error annotations
//	mrmlint -list                     # describe the analyzers
//
// Findings are suppressed case by case with a comment on (or directly
// above) the flagged line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/performability/csrl/internal/lint"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("mrmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list the analyzers and exit")
		enable   = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable  = fs.String("disable", "", "comma-separated analyzers to skip")
		jsonMode = fs.Bool("json", false, "emit one JSON object per finding (module-relative paths)")
		ghMode   = fs.Bool("github", false, "emit GitHub Actions ::error annotations")
		useCache = fs.Bool("cache", false, "reuse per-package results from the incremental cache")
		cacheDir = fs.String("cache-dir", ".mrmlint-cache", "cache directory (relative paths resolve against the module root)")
		benchOut = fs.String("bench-json", "", "time a cold vs warm cached run, write the report to this file and gate on warm < 50% of cold")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: mrmlint [-list] [-enable=a,b] [-disable=a,b] [-json|-github] [-cache [-cache-dir=d]] [-bench-json=f] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonMode && *ghMode {
		fmt.Fprintln(stderr, "mrmlint: -json and -github are mutually exclusive")
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}
	if *benchOut != "" {
		return runLintBench(stderr, *benchOut, cwd, patterns, analyzers)
	}
	mode := emitPlain
	switch {
	case *jsonMode:
		mode = emitJSON
	case *ghMode:
		mode = emitGitHub
	}
	cacheOpt := ""
	if *useCache {
		cacheOpt = *cacheDir
	}
	n, cache, err := lintPackagesCached(stdout, cwd, patterns, analyzers, mode, cacheOpt)
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}
	if cache != nil {
		fmt.Fprintln(stderr, cache.stats(*jsonMode))
	}
	if n > 0 {
		fmt.Fprintf(stderr, "mrmlint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// emitMode renders one diagnostic to the output stream. moduleDir is the
// absolute module root, for modes that want portable relative paths.
type emitMode func(w io.Writer, moduleDir string, d lint.Diagnostic)

func emitPlain(w io.Writer, _ string, d lint.Diagnostic) {
	fmt.Fprintln(w, d)
}

// jsonDiagnostic is the stable machine-readable shape: one object per
// line, file paths module-relative with forward slashes. Every line is
// stamped with the producing analyzer's version and the registry hash so a
// consumer diffing stored findings can tell "the code changed" apart from
// "the analyzers changed".
type jsonDiagnostic struct {
	File            string `json:"file"`
	Line            int    `json:"line"`
	Column          int    `json:"column"`
	EndLine         int    `json:"endLine,omitempty"`
	Analyzer        string `json:"analyzer"`
	AnalyzerVersion int    `json:"analyzerVersion"`
	Registry        string `json:"registry"`
	Message         string `json:"message"`
}

// registryStamp fingerprints the analyzer set baked into this binary.
var registryStamp = lint.RegistryHash()

// analyzerVersion looks up the version of the named analyzer (the zero
// value is version 1, matching the registry hash convention).
func analyzerVersion(name string) int {
	if a := lint.ByName(name); a != nil && a.Version != 0 {
		return a.Version
	}
	return 1
}

func emitJSON(w io.Writer, moduleDir string, d lint.Diagnostic) {
	jd := jsonDiagnostic{
		File:            moduleRelative(moduleDir, d.Pos.Filename),
		Line:            d.Pos.Line,
		Column:          d.Pos.Column,
		Analyzer:        d.Analyzer,
		AnalyzerVersion: analyzerVersion(d.Analyzer),
		Registry:        registryStamp,
		Message:         d.Message,
	}
	if d.End.Line > d.Pos.Line && d.End.Filename == d.Pos.Filename {
		jd.EndLine = d.End.Line
	}
	out, err := json.Marshal(jd)
	if err != nil {
		// A Diagnostic is strings and ints; Marshal cannot fail on it.
		panic(err)
	}
	fmt.Fprintf(w, "%s\n", out)
}

func emitGitHub(w io.Writer, moduleDir string, d lint.Diagnostic) {
	endLine := d.Pos.Line
	if d.End.Line > endLine && d.End.Filename == d.Pos.Filename {
		endLine = d.End.Line
	}
	fmt.Fprintf(w, "::error file=%s,line=%d,endLine=%d,col=%d,title=%s::%s\n",
		ghEscapeProperty(moduleRelative(moduleDir, d.Pos.Filename)),
		d.Pos.Line, endLine, d.Pos.Column,
		ghEscapeProperty("mrmlint("+d.Analyzer+")"),
		ghEscapeData(d.Message))
}

// moduleRelative renders an absolute filename relative to the module root
// with forward slashes, falling back to the absolute path outside it.
func moduleRelative(moduleDir, filename string) string {
	rel, err := filepath.Rel(moduleDir, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// ghEscapeData escapes a workflow-command message per the GitHub Actions
// runner rules.
func ghEscapeData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// ghEscapeProperty escapes a workflow-command property value; properties
// additionally reserve ':' and ','.
func ghEscapeProperty(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}

// lintPackages loads every package matched by patterns (relative to dir)
// and returns the number of findings printed.
func lintPackages(stdout io.Writer, dir string, patterns []string, analyzers []*lint.Analyzer, emit emitMode) (int, error) {
	n, _, err := lintPackagesCached(stdout, dir, patterns, analyzers, emit, "")
	return n, err
}

// lintPackagesCached is lintPackages with an optional incremental cache:
// a non-empty cacheDir serves unchanged packages from the store instead
// of re-analyzing them, and records the analyzed ones. The diagnostic
// stream on stdout is byte-identical between cold and warm runs; the
// cold/warm statistics live on the returned cache.
func lintPackagesCached(stdout io.Writer, dir string, patterns []string, analyzers []*lint.Analyzer, emit emitMode, cacheDir string) (int, *lintCache, error) {
	loader, err := lint.NewLoader(dir)
	if err != nil {
		return 0, nil, err
	}
	dirs, err := loader.Expand(dir, patterns)
	if err != nil {
		return 0, nil, err
	}
	if len(dirs) == 0 {
		return 0, nil, fmt.Errorf("no packages match %s", strings.Join(patterns, " "))
	}
	var cache *lintCache
	if cacheDir != "" {
		cache, err = newLintCache(cacheDir, loader.ModuleDir, loader.ModulePath, loader.GoVersion, analyzers)
		if err != nil {
			return 0, nil, err
		}
	}
	runner := lint.NewRunner(analyzers)
	total := 0
	for _, d := range dirs {
		var diags []lint.Diagnostic
		if cache != nil {
			if cached, ok := cache.get(d); ok {
				cache.Warm++
				for _, diag := range cached {
					emit(stdout, loader.ModuleDir, diag)
				}
				total += len(cached)
				continue
			}
		}
		pkg, err := loader.LoadDir(d)
		if err != nil {
			return 0, cache, err
		}
		diags, err = runner.RunPackage(pkg)
		if err != nil {
			return 0, cache, err
		}
		if cache != nil {
			cache.Cold++
			if err := cache.put(d, diags); err != nil {
				return 0, cache, err
			}
		}
		for _, diag := range diags {
			emit(stdout, loader.ModuleDir, diag)
		}
		total += len(diags)
	}
	return total, cache, nil
}

// selectAnalyzers applies the -enable/-disable flags to the registry.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer)
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	parse := func(list string) (map[string]bool, error) {
		set := make(map[string]bool)
		if list == "" {
			return set, nil
		}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if byName[name] == nil {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(known, ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if len(on) > 0 && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("flag selection leaves no analyzers enabled")
	}
	return out, nil
}
