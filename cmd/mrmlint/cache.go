package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/performability/csrl/internal/lint"
)

// cacheFormat versions the on-disk entry layout; bumping it orphans every
// stored entry (they are re-created on the next cold run and the stale
// files are simply never read again).
const cacheFormat = "mrmlint-cache-v1"

// lintCache is the incremental result store: one entry per package,
// keyed by a hash chain that covers everything a package's diagnostics
// can depend on — the analyzer registry (names and versions via
// lint.RegistryHash), the enabled subset, the module go directive, the
// package's own source bytes, and, recursively, the keys of its
// module-internal dependencies. A source edit therefore invalidates the
// edited package and every package whose interprocedural summaries could
// have seen the change, while unrelated packages stay warm.
type lintCache struct {
	dir        string // entry directory
	moduleDir  string
	modulePath string
	salt       string

	keys    map[string]string // package dir → cache key
	visited map[string]bool   // cycle guard for key computation

	// Cold counts packages that were analyzed this run, Warm packages
	// served from the store.
	Cold, Warm int
}

// newLintCache opens (creating if needed) a cache under cacheDir for the
// module rooted at moduleDir. analyzers is the enabled subset; goVersion
// the module's go directive. A relative cacheDir is resolved against the
// module root, so CI and local runs share `.mrmlint-cache/` regardless of
// the invocation directory.
func newLintCache(cacheDir, moduleDir, modulePath, goVersion string, analyzers []*lint.Analyzer) (*lintCache, error) {
	if !filepath.IsAbs(cacheDir) {
		cacheDir = filepath.Join(moduleDir, cacheDir)
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, fmt.Errorf("mrmlint: cache dir: %w", err)
	}
	enabled := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		enabled = append(enabled, a.Name+"@v"+strconv.Itoa(analyzerVersion(a.Name)))
	}
	sort.Strings(enabled)
	h := sha256.New()
	fmt.Fprintln(h, cacheFormat)
	fmt.Fprintln(h, lint.RegistryHash())
	fmt.Fprintln(h, strings.Join(enabled, ","))
	fmt.Fprintln(h, goVersion)
	return &lintCache{
		dir:        cacheDir,
		moduleDir:  moduleDir,
		modulePath: modulePath,
		salt:       hex.EncodeToString(h.Sum(nil)),
		keys:       make(map[string]string),
		visited:    make(map[string]bool),
	}, nil
}

// packageFiles lists the non-test .go files of dir in sorted order — the
// same selection the loader lints.
func packageFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// key computes (and memoises) the cache key of the package in dir. The
// hash covers the salt, the module-relative directory, every source file
// (name and content) and the keys of all module-internal imports, so any
// upstream change ripples into every dependent key.
func (c *lintCache) key(dir string) (string, error) {
	if k, ok := c.keys[dir]; ok {
		return k, nil
	}
	if c.visited[dir] {
		return "", fmt.Errorf("mrmlint: import cycle through %s", dir)
	}
	c.visited[dir] = true
	defer delete(c.visited, dir)

	files, err := packageFiles(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(c.moduleDir, dir)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintln(h, c.salt)
	fmt.Fprintln(h, filepath.ToSlash(rel))
	depSet := make(map[string]bool)
	for _, name := range files {
		full := filepath.Join(dir, name)
		data, err := os.ReadFile(full)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d\n", name, len(data))
		_, _ = h.Write(data) // hash.Hash.Write never fails
		imps, err := c.moduleImportsOf(full)
		if err != nil {
			return "", err
		}
		for _, p := range imps {
			depSet[p] = true
		}
	}
	deps := make([]string, 0, len(depSet))
	for p := range depSet {
		deps = append(deps, p)
	}
	sort.Strings(deps)
	for _, p := range deps {
		depDir := filepath.Join(c.moduleDir, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(p, c.modulePath), "/")))
		dk, err := c.key(depDir)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep %s %s\n", p, dk)
	}
	k := hex.EncodeToString(h.Sum(nil))
	c.keys[dir] = k
	return k, nil
}

func (c *lintCache) isModulePath(p string) bool {
	return p == c.modulePath || strings.HasPrefix(p, c.modulePath+"/")
}

// moduleImportsOf returns the module-internal import paths of one file,
// read with an imports-only parse (no bodies, no type checking).
func (c *lintCache) moduleImportsOf(file string) ([]string, error) {
	f, err := parser.ParseFile(token.NewFileSet(), file, nil, parser.ImportsOnly)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if c.isModulePath(p) {
			out = append(out, p)
		}
	}
	return out, nil
}

// entry is the stored shape: the diagnostics of one package run, with
// module-relative filenames so the cache survives a checkout moving.
type cacheEntry struct {
	Format string            `json:"format"`
	Diags  []lint.Diagnostic `json:"diags"`
}

func (c *lintCache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// get returns the stored diagnostics for the package in dir, with
// filenames re-absolutised, or ok=false on any miss or decode problem (a
// corrupt entry behaves like a cold package and is rewritten).
func (c *lintCache) get(dir string) ([]lint.Diagnostic, bool) {
	k, err := c.key(dir)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(c.entryPath(k))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Format != cacheFormat {
		return nil, false
	}
	for i := range e.Diags {
		e.Diags[i].Pos.Filename = c.absolute(e.Diags[i].Pos.Filename)
		e.Diags[i].End.Filename = c.absolute(e.Diags[i].End.Filename)
	}
	return e.Diags, true
}

// put stores the diagnostics for the package in dir under its current
// key, atomically (write to a temp file, then rename).
func (c *lintCache) put(dir string, diags []lint.Diagnostic) error {
	k, err := c.key(dir)
	if err != nil {
		return err
	}
	e := cacheEntry{Format: cacheFormat, Diags: make([]lint.Diagnostic, len(diags))}
	copy(e.Diags, diags)
	for i := range e.Diags {
		e.Diags[i].Pos.Filename = c.relative(e.Diags[i].Pos.Filename)
		e.Diags[i].End.Filename = c.relative(e.Diags[i].End.Filename)
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()           // best-effort cleanup on an already-failing path
		_ = os.Remove(tmp.Name()) // ditto
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup on an already-failing path
		return err
	}
	return os.Rename(tmp.Name(), c.entryPath(k))
}

// relative maps an absolute filename into module-relative slash form for
// storage; filenames outside the module (or already relative) pass
// through unchanged.
func (c *lintCache) relative(filename string) string {
	if filename == "" || !filepath.IsAbs(filename) {
		return filename
	}
	rel, err := filepath.Rel(c.moduleDir, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}

// absolute undoes relative for a loaded entry.
func (c *lintCache) absolute(filename string) string {
	if filename == "" || filepath.IsAbs(filename) {
		return filename
	}
	return filepath.Join(c.moduleDir, filepath.FromSlash(filename))
}

// stats renders the cold/warm counters: a JSON object in json mode (kept
// off stdout so the diagnostic stream stays byte-identical between cold
// and warm runs), a plain sentence otherwise.
func (c *lintCache) stats(jsonMode bool) string {
	if jsonMode {
		out, _ := json.Marshal(map[string]any{
			"cache": map[string]any{"cold": c.Cold, "warm": c.Warm, "dir": c.dir},
		})
		return string(out)
	}
	return fmt.Sprintf("mrmlint: cache: %d package(s) warm, %d cold (%s)", c.Warm, c.Cold, c.dir)
}
