package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/performability/csrl/internal/adhoc"
)

func TestTable1Static(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"launch", "0.75", "Doze", "20 mA"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table 1 output missing %q", want)
		}
	}
}

func TestTable2ReproducesNColumn(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	// The paper's N values must appear verbatim.
	for _, n := range []string{"496", "519", "536", "551", "563", "574", "585", "594"} {
		if !strings.Contains(out.String(), n) {
			t.Errorf("table 2 output missing N=%s:\n%s", n, out.String())
		}
	}
	if !strings.Contains(out.String(), "0.4954") {
		t.Errorf("table 2 did not converge to the paper value:\n%s", out.String())
	}
}

func TestFigure2StateSpace(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "9 reachable markings") {
		t.Errorf("figure 2 output:\n%s", out.String())
	}
}

func TestFigure1Trajectories(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure", "1", "-paths", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "trajectory 1") {
		t.Errorf("figure 1 output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Monte-Carlo estimate") {
		t.Errorf("figure 1 missing the estimate:\n%s", out.String())
	}
}

func TestPropertyQ3FailsAtTextBounds(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-q", "3"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "holds: false") {
		t.Errorf("Q3 should not hold:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0.4969") {
		t.Errorf("Q3 text-bound value missing:\n%s", out.String())
	}
}

func TestDumpModelRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "station.json")
	var out bytes.Buffer
	if err := run([]string{"-dump-model", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read dump: %v", err)
	}
	for _, want := range []string{"adhoc_idle", "call_initiated", `"rate"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("dumped model missing %q", want)
		}
	}
}

// TestCollectStatsDeterministic pins the observability workload of the
// -json report: the first Q3 evaluation must prove its error budget, the
// repeats must hit the memo, and the whole record must be reproducible
// run to run (it is compared against a stored baseline in CI).
func TestCollectStatsDeterministic(t *testing.T) {
	st, err := collectStats(1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.BudgetOK || st.BudgetTotal <= 0 {
		t.Errorf("first evaluation must ledger a positive budget within eps: %+v", st)
	}
	if st.MemoMisses == 0 || st.MemoHits == 0 {
		t.Errorf("stats workload must both miss (run 1) and hit (runs 2-3) the memo: %+v", st)
	}
	// Runs 2 and 3 replay every lookup run 1 missed, so at least 2/3 of
	// all lookups hit.
	if st.MemoHitRate < 0.6 {
		t.Errorf("memo hit-rate %.3f below the structural floor 2/3", st.MemoHitRate)
	}
	again, err := collectStats(1)
	if err != nil {
		t.Fatal(err)
	}
	if *st != *again {
		t.Errorf("stats workload not deterministic:\n  %+v\n  %+v", st, again)
	}
}

// TestBaselineStatsGuards exercises the -baseline memo hit-rate and
// budget guards on hand-built reports (no benchmarking involved).
func TestBaselineStatsGuards(t *testing.T) {
	writeBase := func(t *testing.T, rep benchReport) string {
		t.Helper()
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "base.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := writeBase(t, benchReport{Stats: &benchStats{MemoHitRate: 0.8, BudgetOK: true}})

	var out bytes.Buffer
	fresh := benchReport{Stats: &benchStats{MemoHitRate: 0.79, BudgetOK: true}}
	if err := compareBaseline(&out, fresh, base); err != nil {
		t.Errorf("hit-rate drop within slack must pass: %v", err)
	}
	fresh.Stats.MemoHitRate = 0.5
	if err := compareBaseline(&out, fresh, base); err == nil {
		t.Error("hit-rate drop beyond slack must fail")
	}
	fresh.Stats.MemoHitRate = 0.8
	fresh.Stats.BudgetOK = false
	if err := compareBaseline(&out, fresh, base); err == nil {
		t.Error("losing the budget proof must fail")
	}
}

// TestBaselineRefusesCPUMismatch pins the per-CPU-count baseline rule:
// comparing a report against a baseline recorded on a machine with a
// different core count must fail up front with an error naming both
// counts, before any record-level comparison happens.
func TestBaselineRefusesCPUMismatch(t *testing.T) {
	data, err := json.Marshal(benchReport{NumCPU: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = compareBaseline(&out, benchReport{NumCPU: 8}, path)
	if err == nil {
		t.Fatal("num_cpu mismatch must refuse the comparison")
	}
	for _, want := range []string{"num_cpu=4", "num_cpu=8", "per CPU count"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error missing %q: %v", want, err)
		}
	}
}

// TestCollectBlockStats pins the matrix-pass contrast that motivates the
// multi-vector kernels: with detection off both counts are structural, so
// the vector path must cost exactly g block passes.
func TestCollectBlockStats(t *testing.T) {
	red, err := adhoc.Q3Reduced()
	if err != nil {
		t.Fatal(err)
	}
	st, err := collectBlockStats(red.Model, red.Model.Label("goal"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.PassesBlock == 0 || st.PassesVector != int64(st.G)*st.PassesBlock {
		t.Errorf("structural pass counts off: %+v (want vector = g×block)", st)
	}
}

func TestNoActionIsAnError(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("empty invocation should fail with usage")
	}
}
