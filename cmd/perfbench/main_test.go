package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTable1Static(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"launch", "0.75", "Doze", "20 mA"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table 1 output missing %q", want)
		}
	}
}

func TestTable2ReproducesNColumn(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	// The paper's N values must appear verbatim.
	for _, n := range []string{"496", "519", "536", "551", "563", "574", "585", "594"} {
		if !strings.Contains(out.String(), n) {
			t.Errorf("table 2 output missing N=%s:\n%s", n, out.String())
		}
	}
	if !strings.Contains(out.String(), "0.4954") {
		t.Errorf("table 2 did not converge to the paper value:\n%s", out.String())
	}
}

func TestFigure2StateSpace(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "9 reachable markings") {
		t.Errorf("figure 2 output:\n%s", out.String())
	}
}

func TestFigure1Trajectories(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure", "1", "-paths", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "trajectory 1") {
		t.Errorf("figure 1 output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Monte-Carlo estimate") {
		t.Errorf("figure 1 missing the estimate:\n%s", out.String())
	}
}

func TestPropertyQ3FailsAtTextBounds(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-q", "3"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "holds: false") {
		t.Errorf("Q3 should not hold:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0.4969") {
		t.Errorf("Q3 text-bound value missing:\n%s", out.String())
	}
}

func TestDumpModelRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "station.json")
	var out bytes.Buffer
	if err := run([]string{"-dump-model", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read dump: %v", err)
	}
	for _, want := range []string{"adhoc_idle", "call_initiated", `"rate"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("dumped model missing %q", want)
		}
	}
}

func TestNoActionIsAnError(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("empty invocation should fail with usage")
	}
}
