// Command perfbench regenerates every table and figure of the paper's
// evaluation (Section 5) from this repository's implementations:
//
//	perfbench -table 1    transition rates and rewards of the SRN
//	perfbench -table 2    occupation-time algorithm: value, N, time vs ε
//	perfbench -table 3    pseudo-Erlang approximation: value, error, time vs k
//	perfbench -table 4    discretisation: value, error, time vs step d
//	perfbench -figure 1   sample trajectories of the 2-D process (X_t, Y_t)
//	perfbench -figure 2   the SRN reachability graph (Figure 2 → 9-state MRM)
//	perfbench -q 1|2|3    check properties Q1–Q3 through the CSRL checker
//	perfbench -all        everything above in order
//
// By default tables use the effective reward bound r = 550 mAh that
// reproduces the paper's printed numbers (see EXPERIMENTS.md); pass
// -r 600 for the bound as literally stated in the text.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/discretise"
	"github.com/performability/csrl/internal/erlang"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/modelfile"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/parallel"
	"github.com/performability/csrl/internal/sericola"
	"github.com/performability/csrl/internal/sim"
	"github.com/performability/csrl/internal/srn"
	"github.com/performability/csrl/internal/transient"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("perfbench", flag.ContinueOnError)
	var (
		table    = fs.Int("table", 0, "regenerate table 1-4")
		figure   = fs.Int("figure", 0, "regenerate figure 1-2")
		q        = fs.Int("q", 0, "check property Q1-Q3")
		all      = fs.Bool("all", false, "regenerate everything")
		rBound   = fs.Float64("r", adhoc.Q3PaperRewardBound, "reward bound for the Q3 path formula (mAh)")
		tBound   = fs.Float64("t", adhoc.Q3TimeBound, "time bound for the Q3 path formula (hours)")
		paths    = fs.Int("paths", 5, "trajectories for -figure 1")
		seed     = fs.Int64("seed", 1, "simulation seed")
		dump     = fs.String("dump-model", "", "write the case-study MRM as JSON to this path and exit")
		workers  = fs.Int("workers", 0, "worker goroutines for the numerical procedures (0 = all CPUs, 1 = sequential)")
		compare  = fs.Bool("compare", false, "time one workload sequentially and in parallel and report the speedup")
		jsonPath = fs.String("json", "", "run the benchmark matrix and write a BENCH_PR7.json-style report to this path")
		baseline = fs.String("baseline", "", "compare the benchmark matrix against this stored report; exit non-zero on >20% time or >10% alloc regressions")
		wkSweep  = fs.Bool("workers-sweep", false, "with -json/-baseline: additionally time the sweep matrix at Workers ∈ {1,2,4,8} so the report carries speedup curves (num_cpu is stamped)")
		scPath   = fs.String("scale-json", "", "run the cluster scale sweep (dense vs truncated check past 10^5 states) and write a BENCH_PR9.json-style record to this path")
		scCheck  = fs.String("scale-check", "", "validate this stored scale record, re-prove the truncation budget on a smaller instance, and gate the lump pre-pass on the seed model")
		scN      = fs.Int("scale-n", scaleN, "workstations per side for -scale-json (2·(n+1)² states)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dump != "" {
		return dumpModel(w, *dump)
	}
	if *scPath != "" {
		return scaleJSON(w, *scPath, *scN, *workers)
	}
	if *scCheck != "" {
		return scaleCheck(w, *scCheck, *workers)
	}
	if !*all && !*compare && *table == 0 && *figure == 0 && *q == 0 && *jsonPath == "" && *baseline == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -table, -figure, -q, -compare, -json, -baseline, -scale-json, -scale-check or -all")
	}

	red, err := adhoc.Q3Reduced()
	if err != nil {
		return err
	}
	goal := red.Model.Label("goal")
	init := red.Model.InitialState()

	if *compare {
		if err := compareWorkload(w, red.Model, goal, *workers); err != nil {
			return err
		}
	}
	if *jsonPath != "" || *baseline != "" {
		if err := benchJSON(w, red.Model, goal, *jsonPath, *baseline, *workers, *wkSweep); err != nil {
			return err
		}
	}

	do := func(n int, sel *int, fn func() error) error {
		if *all || *sel == n {
			return fn()
		}
		return nil
	}
	steps := []func() error{
		func() error { return do(1, table, func() error { return table1(w) }) },
		func() error { return do(2, figure, func() error { return figure2(w) }) },
		func() error {
			return do(2, table, func() error { return table2(w, red.Model, goal, init, *tBound, *rBound, *workers) })
		},
		func() error {
			return do(3, table, func() error { return table3(w, red.Model, goal, init, *tBound, *rBound, *workers) })
		},
		func() error {
			return do(4, table, func() error { return table4(w, red.Model, goal, init, *tBound, *rBound, *workers) })
		},
		func() error {
			return do(1, figure, func() error { return figure1(w, red.Model, goal, init, *tBound, *rBound, *paths, *seed) })
		},
		func() error { return do(1, q, func() error { return property(w, 1) }) },
		func() error { return do(2, q, func() error { return property(w, 2) }) },
		func() error { return do(3, q, func() error { return property(w, 3) }) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

func table1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: transition rates and rewards of the SRN (Figure 2)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-12s %-10s %s\n", "transition", "mean time", "rate (per hour)")
	rows := []struct {
		name string
		mean string
		rate float64
	}{
		{"accept", "20 sec", adhoc.RateAccept},
		{"connect", "10 sec", adhoc.RateConnect},
		{"disconnect", "4 min", adhoc.RateDisconnect},
		{"doze", "5 min", adhoc.RateDoze},
		{"give up", "1 min", adhoc.RateGiveUp},
		{"interrupt", "1 min", adhoc.RateInterrupt},
		{"launch", "80 min", adhoc.RateLaunch},
		{"reconfirm", "4 min", adhoc.RateReconfirm},
		{"request", "10 min", adhoc.RateRequest},
		{"ring", "80 min", adhoc.RateRing},
		{"wake up", "16 min", adhoc.RateWakeUp},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %-10s %g\n", r.name, r.mean, r.rate)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-16s %s\n", "place", "reward")
	rewards := []struct {
		name  string
		value float64
	}{
		{"Ad hoc Active", adhoc.PowerAdHocActive},
		{"Ad hoc Idle", adhoc.PowerAdHocIdle},
		{"Call Active", adhoc.PowerCallActive},
		{"Call Idle", adhoc.PowerCallIdle},
		{"Call Incoming", adhoc.PowerCallIncoming},
		{"Call Initiated", adhoc.PowerCallInitiated},
		{"Doze", adhoc.PowerDoze},
	}
	for _, r := range rewards {
		fmt.Fprintf(w, "  %-16s %g mA\n", r.name, r.value)
	}
	fmt.Fprintln(w)
	return nil
}

func table2(w io.Writer, m *mrm.MRM, goal *mrm.StateSet, init int, tb, rb float64, workers int) error {
	fmt.Fprintf(w, "Table 2: occupation-time distribution algorithm (t=%g, r=%g, λ=%g)\n\n", tb, rb, adhoc.PaperLambda)
	fmt.Fprintf(w, "  %-8s %-5s %-14s %s\n", "eps", "N", "value", "time")
	for _, eps := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8} {
		start := time.Now()
		res, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{Epsilon: eps, Lambda: adhoc.PaperLambda, Workers: workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-8.0e %-5d %-14.8f %v\n", eps, res.N, res.Values[init], time.Since(start).Round(time.Microsecond))
	}
	fmt.Fprintln(w)
	return nil
}

func table3(w io.Writer, m *mrm.MRM, goal *mrm.StateSet, init int, tb, rb float64, workers int) error {
	fmt.Fprintf(w, "Table 3: pseudo-Erlang approximation (t=%g, r=%g)\n\n", tb, rb)
	// Reference value for the relative-error column, as in the paper.
	ref, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{Epsilon: 1e-10})
	if err != nil {
		return err
	}
	exact := ref.Values[init]
	fmt.Fprintf(w, "  %-6s %-14s %-10s %s\n", "k", "value", "rel.err", "time")
	for k := 1; k <= 1024; k *= 2 {
		start := time.Now()
		opts := erlang.Options{K: k, Transient: transient.Options{Epsilon: 1e-12, Workers: workers}}
		vals, err := erlang.ReachProbAll(m, goal, tb, rb, opts)
		if err != nil {
			return err
		}
		v := vals[init]
		fmt.Fprintf(w, "  %-6d %-14.8f %-9.2f%%  %v\n", k, v, 100*abs(v-exact)/exact, time.Since(start).Round(time.Microsecond))
	}
	fmt.Fprintln(w)
	return nil
}

func table4(w io.Writer, m *mrm.MRM, goal *mrm.StateSet, init int, tb, rb float64, workers int) error {
	fmt.Fprintf(w, "Table 4: Tijms–Veldman discretisation (t=%g, r=%g)\n\n", tb, rb)
	ref, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{Epsilon: 1e-10})
	if err != nil {
		return err
	}
	exact := ref.Values[init]
	fmt.Fprintf(w, "  %-8s %-14s %-10s %s\n", "d", "value", "rel.err", "time")
	for _, den := range []int{16, 32, 64, 128} {
		start := time.Now()
		v, err := discretise.ReachProb(m, goal, tb, rb, init, discretise.Options{
			D:           1 / float64(den),
			AllowCoarse: den < 20, // the paper's first row exceeds 1/max E(s)
			Workers:     workers,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  1/%-6d %-14.8f %-9.2f%%  %v\n", den, v, 100*abs(v-exact)/exact, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintln(w)
	return nil
}

func figure1(w io.Writer, m *mrm.MRM, goal *mrm.StateSet, init int, tb, rb float64, paths int, seed int64) error {
	fmt.Fprintf(w, "Figure 1: the 2-D process (X_t, Y_t) with absorbing reward barrier r=%g\n\n", rb)
	s := sim.New(m, seed)
	for p := 0; p < paths; p++ {
		path, err := s.SamplePath(init, tb, 10_000)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  trajectory %d:\n", p+1)
		for _, e := range path.Events {
			marker := ""
			if e.Reward > rb {
				marker = "  <-- crossed the absorbing barrier"
			}
			fmt.Fprintf(w, "    t=%8.4f  X=%-28s Y=%8.2f%s\n", e.Time, m.Name(e.State), e.Reward, marker)
		}
	}
	est, err := s.ReachProb(init, goal, tb, rb, 200_000)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n  Monte-Carlo estimate of Pr{Y_t ≤ r, X_t ∈ goal}: %v\n\n", est)
	return nil
}

func figure2(w io.Writer) error {
	fmt.Fprintln(w, "Figure 2: SRN of the battery-powered station → reachability graph")
	fmt.Fprintln(w)
	net, initM := adhoc.Net()
	m, markings, err := net.BuildMRM(initM, srn.Options{Reward: adhoc.Power})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %d places, %d transitions, %d reachable markings (paper: 9 recurrent states)\n\n",
		len(net.Places), len(net.Transitions), len(markings))
	for s := 0; s < m.N(); s++ {
		fmt.Fprintf(w, "  state %d: %-28s reward %5g mA, exit rate %6.2f\n", s, m.Name(s), m.Reward(s), m.ExitRate(s))
	}
	fmt.Fprintln(w)
	return nil
}

func property(w io.Writer, which int) error {
	m, err := adhoc.Model()
	if err != nil {
		return err
	}
	var bounded, query string
	switch which {
	case 1:
		bounded = "P>0.5 [ F{r<=600} call_incoming ]"
		query = "P=? [ F{r<=600} call_incoming ]"
	case 2:
		bounded = "P>0.5 [ F{t<=24} call_incoming ]"
		query = "P=? [ F{t<=24} call_incoming ]"
	case 3:
		bounded = "P>0.5 [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]"
		query = "P=? [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]"
	default:
		return fmt.Errorf("unknown property Q%d", which)
	}
	c := core.New(m, core.DefaultOptions())
	vals, err := c.Values(logic.MustParse(query))
	if err != nil {
		return err
	}
	holds, err := c.Check(logic.MustParse(bounded))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Q%d: %s\n", which, bounded)
	fmt.Fprintf(w, "  probability from the initial state: %0.8f\n", vals[0])
	fmt.Fprintf(w, "  property holds: %v\n\n", holds)
	return nil
}

func dumpModel(w io.Writer, path string) error {
	m, err := adhoc.Model()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := modelfile.Encode(f, m); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote the 9-state case-study MRM to %s\n", path)
	return nil
}

// compareWorkload times one representative P3 workload — the Tijms–Veldman
// ReachProbAll on the Q3 reduction, whose |S| independent runs are the
// archetypal embarrassingly-parallel hot path — once with Workers: 1 and
// once with the requested parallelism, and reports both times, the
// speedup, and the largest per-state deviation between the two results.
func compareWorkload(w io.Writer, m *mrm.MRM, goal *mrm.StateSet, workers int) error {
	eff := parallel.Resolve(workers)
	if workers == 1 {
		eff = parallel.Resolve(0) // comparing 1 vs 1 would be pointless
	}
	// Shorter bounds than Table 4 keep the smoke run quick; the code path
	// is identical to the full workload.
	const tb, rb, d = 6.0, 150.0, 1.0 / 64
	opts := discretise.Options{D: d, Workers: 1}
	start := time.Now()
	seq, err := discretise.ReachProbAll(m, goal, tb, rb, opts)
	if err != nil {
		return err
	}
	seqTime := time.Since(start)
	opts.Workers = eff
	start = time.Now()
	par, err := discretise.ReachProbAll(m, goal, tb, rb, opts)
	if err != nil {
		return err
	}
	parTime := time.Since(start)
	var maxDiff float64
	for s := range par {
		if diff := abs(par[s] - seq[s]); diff > maxDiff {
			maxDiff = diff
		}
	}
	fmt.Fprintf(w, "Sequential/parallel comparison: discretisation ReachProbAll (t=%g, r=%g, d=1/%d, %d states)\n\n", tb, rb, int(1/d), m.N())
	fmt.Fprintf(w, "  workers=1:  %v\n", seqTime.Round(time.Millisecond))
	fmt.Fprintf(w, "  workers=%d:  %v\n", eff, parTime.Round(time.Millisecond))
	if parTime > 0 {
		fmt.Fprintf(w, "  speedup:    %.2fx on %d CPU(s)\n", float64(seqTime)/float64(parTime), runtime.NumCPU())
	}
	fmt.Fprintf(w, "  max |Δ|:    %.3g\n\n", maxDiff)
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
