package main

// The -json / -baseline modes give the repository a machine-readable
// performance trail: -json re-times the paper's procedures with
// testing.Benchmark (ns/op, allocs/op, B/op per procedure and knob) and
// writes a BENCH_PR4.json-style report; -baseline compares a fresh run
// against a stored report and fails loudly on regressions, so CI can keep
// the goal-column slicing, steady-state detection and pooling honest.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/discretise"
	"github.com/performability/csrl/internal/erlang"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sericola"
	"github.com/performability/csrl/internal/sparse"
	"github.com/performability/csrl/internal/transient"
)

// Regression thresholds for -baseline: a workload may not get more than 20%
// slower or allocate more than 10% more per op than the stored report.
const (
	timeRegressionFactor  = 1.20
	allocRegressionFactor = 1.10
	// allocSlack ignores regressions below this absolute allocs/op level:
	// ratios of tiny counts (3 vs 2 allocations) are noise, not regressions.
	allocSlack = 16
)

type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchReport struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	NumCPU    int           `json:"num_cpu"`
	Records   []benchRecord `json:"records"`
}

type benchWorkload struct {
	name string
	fn   func(b *testing.B)
}

// workloads assembles the benchmark matrix: each of the paper's procedures
// with the PR's knobs contrasted — goal-column slicing + pooling against
// the historical full-width unpooled path, and steady-state detection on
// against off. The "/sliced-pooled" vs "/fullwidth-unpooled" pair under
// Table2Sericola is the acceptance contrast (≥2× time, ≥4× allocs).
func workloads(m *mrm.MRM, goal *mrm.StateSet, workers int) []benchWorkload {
	tb, rb := adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound
	pool := sparse.NewVecPool()
	var list []benchWorkload
	add := func(name string, fn func() error) {
		list = append(list, benchWorkload{name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}

	for _, eps := range []float64{1e-4, 1e-8} {
		eps := eps
		add(fmt.Sprintf("Table2Sericola/eps=%.0e/sliced-pooled", eps), func() error {
			_, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{
				Epsilon: eps, Lambda: adhoc.PaperLambda, Workers: workers, Pool: pool,
			})
			return err
		})
		add(fmt.Sprintf("Table2Sericola/eps=%.0e/fullwidth-unpooled", eps), func() error {
			_, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{
				Epsilon: eps, Lambda: adhoc.PaperLambda, Workers: workers, FullWidth: true,
			})
			return err
		})
	}

	for _, steady := range []struct {
		label string
		mode  transient.SteadyMode
	}{{"on", transient.SteadyOn}, {"off", transient.SteadyOff}} {
		steady := steady
		add("TransientReach/t=24/steady="+steady.label, func() error {
			_, err := transient.ReachProbAll(m, goal, tb, transient.Options{
				Epsilon: 1e-12, Workers: workers, SteadyDetect: steady.mode, Pool: pool,
			})
			return err
		})
		add("Table3Erlang/k=256/steady="+steady.label, func() error {
			_, err := erlang.ReachProbAll(m, goal, tb, rb, erlang.Options{
				K: 256,
				Transient: transient.Options{
					Epsilon: 1e-12, Workers: workers, SteadyDetect: steady.mode, Pool: pool,
				},
			})
			return err
		})
	}

	add("Table4Discretise/d=1over32/pooled", func() error {
		_, err := discretise.ReachProb(m, goal, tb, rb, m.InitialState(), discretise.Options{
			D: 1.0 / 32, Workers: workers, Pool: pool,
		})
		return err
	})
	add("Table4Discretise/d=1over32/unpooled", func() error {
		_, err := discretise.ReachProb(m, goal, tb, rb, m.InitialState(), discretise.Options{
			D: 1.0 / 32, Workers: workers,
		})
		return err
	})
	return list
}

// benchJSON runs the workload matrix, writes the report to jsonPath (when
// non-empty) and compares against baselinePath (when non-empty), returning
// an error that lists every regression beyond the thresholds.
func benchJSON(w io.Writer, m *mrm.MRM, goal *mrm.StateSet, jsonPath, baselinePath string, workers int) error {
	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	matrix := workloads(m, goal, workers)
	fmt.Fprintf(w, "Benchmark matrix (procedure × knob), %d workloads\n\n", len(matrix))
	fmt.Fprintf(w, "  %-44s %14s %12s %12s\n", "workload", "ns/op", "allocs/op", "B/op")
	for _, wl := range matrix {
		r := testing.Benchmark(wl.fn)
		rec := benchRecord{
			Name:        wl.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		report.Records = append(report.Records, rec)
		fmt.Fprintf(w, "  %-44s %14.0f %12d %12d\n", rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.BytesPerOp)
	}
	fmt.Fprintln(w)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		encErr := enc.Encode(report)
		if closeErr := f.Close(); encErr == nil {
			encErr = closeErr
		}
		if encErr != nil {
			return encErr
		}
		fmt.Fprintf(w, "wrote %d benchmark records to %s\n", len(report.Records), jsonPath)
	}
	if baselinePath != "" {
		return compareBaseline(w, report, baselinePath)
	}
	return nil
}

// compareBaseline checks the fresh report against a stored one, record by
// record (matched by name; workloads missing on either side are reported
// but not fatal), and fails on >20% time or >10% alloc regressions.
func compareBaseline(w io.Writer, report benchReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseByName := make(map[string]benchRecord, len(base.Records))
	for _, r := range base.Records {
		baseByName[r.Name] = r
	}
	var regressions []string
	fmt.Fprintf(w, "Baseline comparison against %s\n\n", path)
	for _, rec := range report.Records {
		old, ok := baseByName[rec.Name]
		if !ok {
			fmt.Fprintf(w, "  %-44s new workload, no baseline\n", rec.Name)
			continue
		}
		delete(baseByName, rec.Name)
		timeRatio := rec.NsPerOp / old.NsPerOp
		fmt.Fprintf(w, "  %-44s time ×%.2f  allocs %d → %d\n", rec.Name, timeRatio, old.AllocsPerOp, rec.AllocsPerOp)
		if timeRatio > timeRegressionFactor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (×%.2f > ×%.2f)", rec.Name, rec.NsPerOp, old.NsPerOp, timeRatio, timeRegressionFactor))
		}
		if rec.AllocsPerOp > allocSlack && float64(rec.AllocsPerOp) > allocRegressionFactor*float64(old.AllocsPerOp) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op vs baseline %d (> ×%.2f)", rec.Name, rec.AllocsPerOp, old.AllocsPerOp, allocRegressionFactor))
		}
	}
	leftover := make([]string, 0, len(baseByName))
	for name := range baseByName {
		leftover = append(leftover, name)
	}
	sort.Strings(leftover)
	for _, name := range leftover {
		fmt.Fprintf(w, "  %-44s present in baseline only\n", name)
	}
	fmt.Fprintln(w)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(w, "  REGRESSION:", r)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(regressions), path)
	}
	fmt.Fprintln(w, "  no regressions beyond thresholds")
	return nil
}
