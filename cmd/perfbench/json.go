package main

// The -json / -baseline modes give the repository a machine-readable
// performance trail: -json re-times the paper's procedures with
// testing.Benchmark (ns/op, allocs/op, B/op per procedure and knob) and
// writes a BENCH_PR7.json-style report; -baseline compares a fresh run
// against a stored report and fails loudly on regressions, so CI can keep
// the goal-column slicing, steady-state detection, pooling and the
// multi-vector block kernels honest. Reports carry the recording machine's
// num_cpu and -baseline refuses to compare across CPU counts.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/discretise"
	"github.com/performability/csrl/internal/erlang"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/obs"
	"github.com/performability/csrl/internal/sericola"
	"github.com/performability/csrl/internal/sparse"
	"github.com/performability/csrl/internal/transient"
)

// Regression thresholds for -baseline: a workload may not get more than 20%
// slower or allocate more than 10% more per op than the stored report.
const (
	timeRegressionFactor  = 1.20
	allocRegressionFactor = 1.10
	// allocSlack ignores regressions below this absolute allocs/op level:
	// ratios of tiny counts (3 vs 2 allocations) are noise, not regressions.
	allocSlack = 16
	// memoHitRateSlack is the tolerated absolute drop of the stats
	// workload's memo hit-rate below the baseline. The workload is
	// deterministic, so any real drop means the corner evaluations stopped
	// sharing reductions or weight tables; the slack only absorbs future
	// intentional memo-key changes that shift the rate by a count or two.
	memoHitRateSlack = 0.05
)

type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchReport struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	NumCPU    int           `json:"num_cpu"`
	Records   []benchRecord `json:"records"`
	Stats     *benchStats   `json:"stats,omitempty"`
	Block     *blockStats   `json:"block,omitempty"`
}

// blockStats records the matrix-pass contrast of the multi-vector kernels:
// one backward sweep of g weighting vectors through the block path versus g
// single-vector sweeps, counted by the sweep.products instrument with
// steady-state detection off so both counts are structural (block = one
// pass per uniformisation step, vector = g per step). The block count must
// be strictly lower — that reduction in val/col traffic is the point of the
// batched kernels, so losing it is a hard failure of the -json run, not a
// threshold judgement.
type blockStats struct {
	G            int   `json:"g"`
	PassesBlock  int64 `json:"matrix_passes_block"`
	PassesVector int64 `json:"matrix_passes_vector"`
}

// benchStats is the observability cross-section of the performance trail:
// the paper's Q3 query evaluated statsRuns times on ONE checker with a
// recorder armed. The first evaluation populates the memo (reduction,
// uniformised matrix, Poisson weights); the repeats must hit it, so the
// cumulative hit-rate is a deterministic number for this workload and a
// drop against the stored baseline means the corner evaluations stopped
// sharing intermediates. The budget fields snapshot the FIRST evaluation
// only — the ledger sums per-call truncation charges, so the ≤ ε proof is
// a per-check statement, not a per-process one.
type benchStats struct {
	Query       string  `json:"query"`
	Runs        int     `json:"runs"`
	Epsilon     float64 `json:"epsilon"`
	BudgetTotal float64 `json:"budget_total"`
	BudgetOK    bool    `json:"budget_ok"`
	MemoHits    int64   `json:"memo_hits"`
	MemoMisses  int64   `json:"memo_misses"`
	MemoHitRate float64 `json:"memo_hit_rate"`
	PoolGets    int64   `json:"pool_gets"`
	PoolReuses  int64   `json:"pool_reuses"`
}

const (
	statsQuery = "P=? [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]"
	statsRuns  = 3
)

// collectStats runs the fixed stats workload and reduces the numerics
// report to the benchStats record.
func collectStats(workers int) (*benchStats, error) {
	m, err := adhoc.Model()
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Workers = workers
	opts.Obs = obs.New()
	checker := core.New(m, opts)
	formula := logic.MustParse(statsQuery)

	st := &benchStats{Query: statsQuery, Runs: statsRuns, Epsilon: opts.Epsilon}
	for i := 0; i < statsRuns; i++ {
		if _, err := checker.Values(formula); err != nil {
			return nil, err
		}
		if i == 0 {
			rep := checker.NumericsReport()
			st.BudgetTotal = rep.BudgetTotal
			st.BudgetOK = rep.BudgetOK
		}
	}
	rep := checker.NumericsReport()
	hits, misses := rep.Gauges["memo.hits"], rep.Gauges["memo.misses"]
	st.MemoHits, st.MemoMisses = int64(hits), int64(misses)
	if total := hits + misses; total > 0 {
		st.MemoHitRate = hits / total
	}
	st.PoolGets = int64(rep.Gauges["pool.gets"])
	st.PoolReuses = int64(rep.Gauges["pool.reuses"])
	return st, nil
}

// blockWeightVecs builds the deterministic g=4 weighting-vector set the
// block workloads sweep: the goal indicator (ReachProbAll's input) plus
// three fixed ramps.
func blockWeightVecs(m *mrm.MRM, goal *mrm.StateSet) [][]float64 {
	n := m.N()
	vs := make([][]float64, 4)
	vs[0] = make([]float64, n)
	goal.Each(func(s int) { vs[0][s] = 1 })
	for j := 1; j < len(vs); j++ {
		vs[j] = make([]float64, n)
		for i := range vs[j] {
			vs[j][i] = float64((i*j+1)%5) / 4
		}
	}
	return vs
}

// collectBlockStats measures the blockStats record on the Q3 reduction.
func collectBlockStats(m *mrm.MRM, goal *mrm.StateSet, workers int) (*blockStats, error) {
	tb := adhoc.Q3TimeBound
	vs := blockWeightVecs(m, goal)
	recBlock := obs.New()
	_, err := transient.BackwardWeightedMulti(m, vs, tb, transient.Options{
		Epsilon: 1e-12, Workers: workers, SteadyDetect: transient.SteadyOff, Obs: recBlock,
	})
	if err != nil {
		return nil, err
	}
	recVec := obs.New()
	for _, v := range vs {
		if _, err := transient.BackwardWeighted(m, v, tb, transient.Options{
			Epsilon: 1e-12, Workers: workers, SteadyDetect: transient.SteadyOff, Obs: recVec,
		}); err != nil {
			return nil, err
		}
	}
	return &blockStats{
		G:            len(vs),
		PassesBlock:  recBlock.Report(1e-12).Counters["sweep.products"],
		PassesVector: recVec.Report(1e-12).Counters["sweep.products"],
	}, nil
}

type benchWorkload struct {
	name string
	fn   func(b *testing.B)
}

// workloads assembles the benchmark matrix: each of the paper's procedures
// with the PR's knobs contrasted — goal-column slicing + pooling against
// the historical full-width unpooled path, and steady-state detection on
// against off. The "/sliced-pooled" vs "/fullwidth-unpooled" pair under
// Table2Sericola is the acceptance contrast (≥2× time, ≥4× allocs).
func workloads(m *mrm.MRM, goal *mrm.StateSet, workers int) []benchWorkload {
	tb, rb := adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound
	pool := sparse.NewVecPool()
	var list []benchWorkload
	add := func(name string, fn func() error) {
		list = append(list, benchWorkload{name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}

	for _, eps := range []float64{1e-4, 1e-8} {
		eps := eps
		add(fmt.Sprintf("Table2Sericola/eps=%.0e/sliced-pooled", eps), func() error {
			_, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{
				Epsilon: eps, Lambda: adhoc.PaperLambda, Workers: workers, Pool: pool,
			})
			return err
		})
		add(fmt.Sprintf("Table2Sericola/eps=%.0e/fullwidth-unpooled", eps), func() error {
			_, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{
				Epsilon: eps, Lambda: adhoc.PaperLambda, Workers: workers, FullWidth: true,
			})
			return err
		})
	}

	// The multi-vector contrast pairs: g bounds (or weighting vectors)
	// advanced together through the block kernels against g runs of the
	// one-vector path. The batched side reads the matrix once per level
	// instead of g times.
	batchRs := []float64{150, 350, rb, 700}
	add("Table2SericolaBatch/g=4/batched", func() error {
		_, err := sericola.ReachProbBatch(m, goal, tb, batchRs, sericola.Options{
			Epsilon: 1e-8, Lambda: adhoc.PaperLambda, Workers: workers, Pool: pool,
		})
		return err
	})
	add("Table2SericolaBatch/g=4/individual", func() error {
		for _, r := range batchRs {
			if _, err := sericola.ReachProbAll(m, goal, tb, r, sericola.Options{
				Epsilon: 1e-8, Lambda: adhoc.PaperLambda, Workers: workers, Pool: pool,
			}); err != nil {
				return err
			}
		}
		return nil
	})
	weightVs := blockWeightVecs(m, goal)
	add("TransientBackward/g=4/block", func() error {
		_, err := transient.BackwardWeightedMulti(m, weightVs, tb, transient.Options{
			Epsilon: 1e-12, Workers: workers, Pool: pool,
		})
		return err
	})
	add("TransientBackward/g=4/vector", func() error {
		for _, v := range weightVs {
			if _, err := transient.BackwardWeighted(m, v, tb, transient.Options{
				Epsilon: 1e-12, Workers: workers, Pool: pool,
			}); err != nil {
				return err
			}
		}
		return nil
	})

	for _, steady := range []struct {
		label string
		mode  transient.SteadyMode
	}{{"on", transient.SteadyOn}, {"off", transient.SteadyOff}} {
		steady := steady
		add("TransientReach/t=24/steady="+steady.label, func() error {
			_, err := transient.ReachProbAll(m, goal, tb, transient.Options{
				Epsilon: 1e-12, Workers: workers, SteadyDetect: steady.mode, Pool: pool,
			})
			return err
		})
		add("Table3Erlang/k=256/steady="+steady.label, func() error {
			_, err := erlang.ReachProbAll(m, goal, tb, rb, erlang.Options{
				K: 256,
				Transient: transient.Options{
					Epsilon: 1e-12, Workers: workers, SteadyDetect: steady.mode, Pool: pool,
				},
			})
			return err
		})
	}

	add("Table4Discretise/d=1over32/pooled", func() error {
		_, err := discretise.ReachProb(m, goal, tb, rb, m.InitialState(), discretise.Options{
			D: 1.0 / 32, Workers: workers, Pool: pool,
		})
		return err
	})
	add("Table4Discretise/d=1over32/unpooled", func() error {
		_, err := discretise.ReachProb(m, goal, tb, rb, m.InitialState(), discretise.Options{
			D: 1.0 / 32, Workers: workers,
		})
		return err
	})
	return list
}

// benchJSON runs the workload matrix, writes the report to jsonPath (when
// non-empty) and compares against baselinePath (when non-empty), returning
// an error that lists every regression beyond the thresholds. With sweep
// set, the matrix additionally times the parallel workloads at Workers ∈
// {1,2,4,8} so the report carries speedup curves for the stamped num_cpu.
func benchJSON(w io.Writer, m *mrm.MRM, goal *mrm.StateSet, jsonPath, baselinePath string, workers int, sweep bool) error {
	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	matrix := workloads(m, goal, workers)
	fmt.Fprintf(w, "Benchmark matrix (procedure × knob), %d workloads\n\n", len(matrix))
	fmt.Fprintf(w, "  %-44s %14s %12s %12s\n", "workload", "ns/op", "allocs/op", "B/op")
	for _, wl := range matrix {
		r := testing.Benchmark(wl.fn)
		rec := benchRecord{
			Name:        wl.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		report.Records = append(report.Records, rec)
		fmt.Fprintf(w, "  %-44s %14.0f %12d %12d\n", rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.BytesPerOp)
	}
	fmt.Fprintln(w)

	if sweep {
		fmt.Fprintf(w, "Workers sweep (num_cpu=%d)\n\n", report.NumCPU)
		fmt.Fprintf(w, "  %-44s %14s %10s\n", "workload", "ns/op", "speedup")
		for _, sw := range []struct {
			name string
			fn   func(wk int) error
		}{
			{"Table2SericolaBatch/g=4", func(wk int) error {
				_, err := sericola.ReachProbBatch(m, goal, adhoc.Q3TimeBound,
					[]float64{150, 350, adhoc.Q3PaperRewardBound, 700}, sericola.Options{
						Epsilon: 1e-8, Lambda: adhoc.PaperLambda, Workers: wk,
					})
				return err
			}},
			{"TransientBackward/g=4", func(wk int) error {
				_, err := transient.BackwardWeightedMulti(m, blockWeightVecs(m, goal),
					adhoc.Q3TimeBound, transient.Options{Epsilon: 1e-12, Workers: wk})
				return err
			}},
		} {
			var base float64
			for _, wk := range []int{1, 2, 4, 8} {
				wk, fn := wk, sw.fn
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := fn(wk); err != nil {
							b.Fatal(err)
						}
					}
				})
				rec := benchRecord{
					Name:        fmt.Sprintf("WorkersSweep/%s/workers=%d", sw.name, wk),
					NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
					AllocsPerOp: r.AllocsPerOp(),
					BytesPerOp:  r.AllocedBytesPerOp(),
				}
				report.Records = append(report.Records, rec)
				if wk == 1 {
					base = rec.NsPerOp
				}
				fmt.Fprintf(w, "  %-44s %14.0f %9.2fx\n", rec.Name, rec.NsPerOp, base/rec.NsPerOp)
			}
		}
		fmt.Fprintln(w)
	}

	stats, err := collectStats(workers)
	if err != nil {
		return err
	}
	report.Stats = stats
	fmt.Fprintf(w, "Observability workload (%d× %s)\n\n", stats.Runs, stats.Query)
	fmt.Fprintf(w, "  error budget: %.3g <= eps %.0e: %v\n", stats.BudgetTotal, stats.Epsilon, stats.BudgetOK)
	fmt.Fprintf(w, "  memo: %d hits / %d misses (hit-rate %.3f)\n", stats.MemoHits, stats.MemoMisses, stats.MemoHitRate)
	fmt.Fprintf(w, "  pool: %d gets, %d reuses\n\n", stats.PoolGets, stats.PoolReuses)

	block, err := collectBlockStats(m, goal, workers)
	if err != nil {
		return err
	}
	report.Block = block
	fmt.Fprintf(w, "Block kernel matrix passes (backward sweep, g=%d): %d block vs %d vector (×%.2f fewer)\n\n",
		block.G, block.PassesBlock, block.PassesVector, float64(block.PassesVector)/float64(block.PassesBlock))
	if block.PassesBlock >= block.PassesVector {
		return fmt.Errorf("block kernel did not reduce matrix passes: %d block vs %d vector", block.PassesBlock, block.PassesVector)
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		encErr := enc.Encode(report)
		if closeErr := f.Close(); encErr == nil {
			encErr = closeErr
		}
		if encErr != nil {
			return encErr
		}
		fmt.Fprintf(w, "wrote %d benchmark records to %s\n", len(report.Records), jsonPath)
	}
	if baselinePath != "" {
		return compareBaseline(w, report, baselinePath)
	}
	return nil
}

// compareBaseline checks the fresh report against a stored one, record by
// record (matched by name; workloads missing on either side are reported
// but not fatal), and fails on >20% time or >10% alloc regressions.
func compareBaseline(w io.Writer, report benchReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	// Benchmark baselines are per CPU count: speedup curves and parallel
	// timings from a machine with a different core count are not comparable
	// numbers, so refusing loudly beats reporting phantom regressions.
	if base.NumCPU != report.NumCPU {
		return fmt.Errorf("baseline %s was recorded with num_cpu=%d but this run has num_cpu=%d — baselines are per CPU count; regenerate the baseline on this machine (make bench-smoke) or compare on a matching one",
			path, base.NumCPU, report.NumCPU)
	}
	baseByName := make(map[string]benchRecord, len(base.Records))
	for _, r := range base.Records {
		baseByName[r.Name] = r
	}
	var regressions []string
	fmt.Fprintf(w, "Baseline comparison against %s\n\n", path)
	for _, rec := range report.Records {
		old, ok := baseByName[rec.Name]
		if !ok {
			fmt.Fprintf(w, "  %-44s new workload, no baseline\n", rec.Name)
			continue
		}
		delete(baseByName, rec.Name)
		timeRatio := rec.NsPerOp / old.NsPerOp
		fmt.Fprintf(w, "  %-44s time ×%.2f  allocs %d → %d\n", rec.Name, timeRatio, old.AllocsPerOp, rec.AllocsPerOp)
		if timeRatio > timeRegressionFactor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (×%.2f > ×%.2f)", rec.Name, rec.NsPerOp, old.NsPerOp, timeRatio, timeRegressionFactor))
		}
		if rec.AllocsPerOp > allocSlack && float64(rec.AllocsPerOp) > allocRegressionFactor*float64(old.AllocsPerOp) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op vs baseline %d (> ×%.2f)", rec.Name, rec.AllocsPerOp, old.AllocsPerOp, allocRegressionFactor))
		}
	}
	leftover := make([]string, 0, len(baseByName))
	for name := range baseByName {
		leftover = append(leftover, name)
	}
	sort.Strings(leftover)
	for _, name := range leftover {
		fmt.Fprintf(w, "  %-44s present in baseline only\n", name)
	}
	fmt.Fprintln(w)
	// The memo hit-rate of the deterministic stats workload is part of the
	// contract: the repeats of the Q3 query must keep hitting the cached
	// reduction and weight tables, and a single failed check must never
	// silently regress the error-budget proof.
	if base.Stats != nil && report.Stats != nil {
		fmt.Fprintf(w, "  %-44s hit-rate %.3f vs baseline %.3f\n", "stats/memo", report.Stats.MemoHitRate, base.Stats.MemoHitRate)
		if report.Stats.MemoHitRate < base.Stats.MemoHitRate-memoHitRateSlack {
			regressions = append(regressions,
				fmt.Sprintf("stats: memo hit-rate %.3f vs baseline %.3f (drop > %.2f)",
					report.Stats.MemoHitRate, base.Stats.MemoHitRate, memoHitRateSlack))
		}
		if base.Stats.BudgetOK && !report.Stats.BudgetOK {
			regressions = append(regressions,
				fmt.Sprintf("stats: error budget %.3g no longer within eps %.0e",
					report.Stats.BudgetTotal, report.Stats.Epsilon))
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(w, "  REGRESSION:", r)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(regressions), path)
	}
	fmt.Fprintln(w, "  no regressions beyond thresholds")
	return nil
}
