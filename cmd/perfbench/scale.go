package main

// The -scale-json / -scale-check modes are the scale acceptance record of
// the truncated-sweep pipeline: -scale-json explores a parametric
// workstation-cluster instance past 10^5 markings, times the dense
// untruncated check against the ledger-charged truncated one on the same
// formula, and writes a BENCH_PR9.json report carrying the speedup, the
// peak active window, the exact truncated mass and the ≤ ε budget proof;
// -scale-check re-validates a committed report's invariants, re-proves the
// budget live on a smaller family member, and times the automatic lumping
// pre-pass on the paper's 9-state model against a lump-off run to catch
// the pre-pass ever costing more than noise on the seed.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/cluster"
	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/obs"
	"github.com/performability/csrl/internal/transient"
)

const (
	// scaleN is the default family knob: 2·(scaleN+1)² = 101 250 markings.
	scaleN = 224
	// scaleCheckN sizes the live budget re-proof of -scale-check (7 442
	// markings — the same code paths at CI-friendly cost).
	scaleCheckN = 60
	// scaleTimeBound and the formulas below ask for the probability of
	// losing the cluster (backbone down or a side exhausted) within four
	// days, starting pristine: the canonical forward-reachability question
	// whose mass stays near the all-up corner.
	scaleTimeBound = 96.0
	scaleQuery     = "P=? [ !down U{t<=96} down ]"
	scaleBounded   = "P<=0.021 [ !down U{t<=96} down ]"
	scaleTruncate  = 1e-14
	scaleEpsilon   = 1e-8
	// scaleSpeedupFloor is the acceptance gate: the truncated check must be
	// at least this much faster than the dense untruncated one.
	scaleSpeedupFloor = 5.0
	// scaleDiffCeil bounds |dense − truncated| on the recorded probability;
	// both carry ≤ ε error so anything near 1e-6 means a real defect.
	scaleDiffCeil = 1e-6
	// seedNoiseFactor is how much slower the lump-on seed check may run
	// than lump-off before -scale-check calls it a regression (the 9-state
	// pre-pass is microseconds; 1.5× absorbs timer noise only).
	seedNoiseFactor = 1.5
)

type scaleReport struct {
	Generated        string  `json:"generated"`
	GoVersion        string  `json:"go_version"`
	NumCPU           int     `json:"num_cpu"`
	N                int     `json:"n"`
	States           int     `json:"states"`
	BuildSeconds     float64 `json:"build_seconds"`
	Query            string  `json:"query"`
	Bounded          string  `json:"bounded"`
	Epsilon          float64 `json:"epsilon"`
	Truncate         float64 `json:"truncate"`
	DenseSeconds     float64 `json:"dense_seconds"`
	TruncatedSeconds float64 `json:"truncated_seconds"`
	Speedup          float64 `json:"speedup"`
	PeakActiveWindow int     `json:"peak_active_window"`
	DroppedStates    int64   `json:"dropped_states"`
	TruncatedMass    float64 `json:"truncated_mass"`
	BudgetTotal      float64 `json:"budget_total"`
	BudgetOK         bool    `json:"budget_ok"`
	DenseProb        float64 `json:"dense_prob"`
	TruncatedProb    float64 `json:"truncated_prob"`
	AbsDiff          float64 `json:"abs_diff"`
}

// scaleTimingRuns is how often each timed leg repeats; the recorded time
// is the fastest run, with a forced GC before each so a collection
// triggered by the other leg's garbage cannot masquerade as sweep cost.
const scaleTimingRuns = 3

func timeBest(runs int, fn func() error) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < runs; i++ {
		runtime.GC()
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// scaleInstance explores the family member and returns the model with its
// down/not-down sets.
func scaleInstance(n int) (*mrm.MRM, time.Duration, error) {
	start := time.Now()
	p, err := cluster.Default(n)
	if err != nil {
		return nil, 0, err
	}
	m, err := p.Build()
	if err != nil {
		return nil, 0, err
	}
	return m, time.Since(start), nil
}

// scaleMeasure runs the dense and truncated legs on the instance and fills
// a report. Lumping is off on both sides so the contrast isolates the
// truncated forward sweep; the csrlcheck acceptance run keeps the lump
// default instead.
func scaleMeasure(w io.Writer, n int, workers int) (*scaleReport, error) {
	rep := &scaleReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		N:         n,
		Query:     scaleQuery,
		Bounded:   scaleBounded,
		Epsilon:   scaleEpsilon,
		Truncate:  scaleTruncate,
	}
	m, buildTime, err := scaleInstance(n)
	if err != nil {
		return nil, err
	}
	rep.States = m.N()
	rep.BuildSeconds = buildTime.Seconds()
	fmt.Fprintf(w, "Scale sweep: cluster N=%d, %d states (built in %v)\n\n", n, m.N(), buildTime.Round(time.Millisecond))

	bounded := logic.MustParse(rep.Bounded)
	query := logic.MustParse(rep.Query)

	denseOpts := core.DefaultOptions()
	denseOpts.Epsilon = scaleEpsilon
	denseOpts.Workers = workers
	denseOpts.Lump = core.LumpOff
	dense := core.New(m, denseOpts)
	var denseHolds bool
	denseTime, err := timeBest(scaleTimingRuns, func() (err error) {
		denseHolds, err = dense.Check(bounded)
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.DenseSeconds = denseTime.Seconds()
	vals, err := dense.Values(query)
	if err != nil {
		return nil, err
	}
	rep.DenseProb = vals[m.InitialState()]

	truncOpts := denseOpts
	truncOpts.Truncate = scaleTruncate
	truncOpts.Obs = obs.New()
	trunc := core.New(m, truncOpts)
	var truncHolds bool
	truncTime, err := timeBest(scaleTimingRuns, func() (err error) {
		// Reset per run so the reported ledger is one check's charges, not
		// the timing repeats summed.
		truncOpts.Obs.Reset()
		truncHolds, err = trunc.Check(bounded)
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.TruncatedSeconds = truncTime.Seconds()
	if denseHolds != truncHolds {
		return nil, fmt.Errorf("scale: dense and truncated verdicts disagree: %v vs %v", denseHolds, truncHolds)
	}

	nr := trunc.NumericsReport()
	rep.BudgetTotal = nr.BudgetTotal
	rep.BudgetOK = nr.BudgetOK
	rep.PeakActiveWindow = int(nr.Gauges["truncation.active-window"])
	rep.DroppedStates = nr.Counters["truncation.dropped-states"]
	for _, c := range nr.Budget {
		if c.Component == "truncation" && c.Term == "state-drop" {
			rep.TruncatedMass = c.Amount
		}
	}

	// The truncated leg's probability, through the same forward entry point
	// the Check fast path uses.
	down := m.Label("down")
	phi := down.Complement()
	prob, err := transient.TimeBoundedUntilFrom(m, phi, down, m.InitialState(), scaleTimeBound, transient.Options{
		Epsilon: scaleEpsilon, Workers: workers, Truncate: scaleTruncate,
	})
	if err != nil {
		return nil, err
	}
	rep.TruncatedProb = prob
	rep.AbsDiff = abs(rep.DenseProb - rep.TruncatedProb)
	if rep.TruncatedSeconds > 0 {
		rep.Speedup = rep.DenseSeconds / rep.TruncatedSeconds
	}

	fmt.Fprintf(w, "  %-28s %v (holds=%v, prob=%.9f)\n", "dense untruncated check:", time.Duration(rep.DenseSeconds*float64(time.Second)).Round(time.Millisecond), denseHolds, rep.DenseProb)
	fmt.Fprintf(w, "  %-28s %v (holds=%v, prob=%.9f)\n", "truncated check:", time.Duration(rep.TruncatedSeconds*float64(time.Second)).Round(time.Millisecond), truncHolds, rep.TruncatedProb)
	fmt.Fprintf(w, "  %-28s %.1fx\n", "speedup:", rep.Speedup)
	fmt.Fprintf(w, "  %-28s %d states (of %d)\n", "peak active window:", rep.PeakActiveWindow, rep.States)
	fmt.Fprintf(w, "  %-28s %d drops, mass %.3g (budget %.3g <= eps %.0e: %v)\n",
		"truncation ledger:", rep.DroppedStates, rep.TruncatedMass, rep.BudgetTotal, rep.Epsilon, rep.BudgetOK)
	fmt.Fprintf(w, "  %-28s %.3g\n\n", "|dense - truncated|:", rep.AbsDiff)
	return rep, nil
}

// scaleGates applies the acceptance invariants shared by the fresh run and
// the committed-report validation.
func scaleGates(rep *scaleReport, wantStates int) error {
	if rep.States < wantStates {
		return fmt.Errorf("scale: %d states, need >= %d", rep.States, wantStates)
	}
	if !rep.BudgetOK {
		return fmt.Errorf("scale: truncation budget %.3g exceeds eps %.0e", rep.BudgetTotal, rep.Epsilon)
	}
	if rep.Speedup < scaleSpeedupFloor {
		return fmt.Errorf("scale: truncated check only %.2fx faster than dense, need >= %.0fx", rep.Speedup, scaleSpeedupFloor)
	}
	if rep.AbsDiff > scaleDiffCeil {
		return fmt.Errorf("scale: dense and truncated probabilities differ by %.3g (> %.0e)", rep.AbsDiff, scaleDiffCeil)
	}
	return nil
}

// scaleJSON runs the full sweep and writes the report.
func scaleJSON(w io.Writer, path string, n, workers int) error {
	rep, err := scaleMeasure(w, n, workers)
	if err != nil {
		return err
	}
	if err := scaleGates(rep, 100_000); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	encErr := enc.Encode(rep)
	if closeErr := f.Close(); encErr == nil {
		encErr = closeErr
	}
	if encErr != nil {
		return encErr
	}
	fmt.Fprintf(w, "wrote scale record to %s\n", path)
	return nil
}

// scaleCheck validates the committed record, re-proves the truncation
// budget live on the smaller family member, and gates the lumping pre-pass
// against noise on the 9-state seed model.
func scaleCheck(w io.Writer, path string, workers int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("scale baseline: %w", err)
	}
	var rec scaleReport
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("scale baseline %s: %w", path, err)
	}
	fmt.Fprintf(w, "Scale record %s: N=%d, %d states, speedup %.1fx, budget %.3g <= %.0e: %v\n",
		path, rec.N, rec.States, rec.Speedup, rec.BudgetTotal, rec.Epsilon, rec.BudgetOK)
	if err := scaleGates(&rec, 100_000); err != nil {
		return err
	}

	live, err := scaleMeasure(w, scaleCheckN, workers)
	if err != nil {
		return err
	}
	if !live.BudgetOK {
		return fmt.Errorf("scale: live N=%d truncation budget %.3g exceeds eps %.0e", scaleCheckN, live.BudgetTotal, live.Epsilon)
	}
	if live.AbsDiff > scaleDiffCeil {
		return fmt.Errorf("scale: live N=%d dense/truncated probabilities differ by %.3g", scaleCheckN, live.AbsDiff)
	}

	return seedLumpGate(w)
}

// seedLumpGate times the paper's Q2 check on the 9-state model with the
// automatic lumping pre-pass on and off. Each op builds a fresh checker so
// the pre-pass is paid every time rather than amortised by the memo — the
// honest per-check cost. The two runs do identical numeric work when the
// quotient declines or is trivial, so anything beyond seedNoiseFactor is
// the pre-pass itself, not noise.
func seedLumpGate(w io.Writer) error {
	m, err := adhoc.Model()
	if err != nil {
		return err
	}
	f := logic.MustParse("P>0.5 [ F{t<=24} call_incoming ]")
	timeMode := func(mode core.LumpMode) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.Lump = mode
				if _, err := core.New(m, opts).Check(f); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	off := timeMode(core.LumpOff)
	on := timeMode(core.LumpAuto)
	ratio := on / off
	fmt.Fprintf(w, "Seed lump gate (9-state model): lump-off %.0f ns/op, lump-auto %.0f ns/op (×%.2f)\n\n", off, on, ratio)
	if ratio > seedNoiseFactor {
		return fmt.Errorf("lump pre-pass slows the seed model ×%.2f (> ×%.2f)", ratio, seedNoiseFactor)
	}
	return nil
}
