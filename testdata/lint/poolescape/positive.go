// Pool-discipline violations: borrowed buffers that miss their Put on
// some path out of the function.
package fake

import (
	"errors"

	"github.com/performability/csrl/internal/sparse"
)

// earlyReturnLeak drops the buffer on the early error return — the exact
// shape of the Sericola clamp-path leak.
func earlyReturnLeak(p *sparse.VecPool, n int) error {
	buf := p.Get(n) // want "not returned to the pool"
	for i := range buf {
		if buf[i] < 0 {
			return errors.New("negative")
		}
	}
	p.Put(buf)
	return nil
}

// neverPut walks off the end of the function with the buffer live.
func neverPut(p *sparse.VecPool, n int) {
	buf := p.Get(n) // want "not returned to the pool"
	for i := range buf {
		buf[i] = 0
	}
}

// overwritten re-Gets into the same variable while the first buffer is
// still live: the first buffer can never be Put again.
func overwritten(p *sparse.VecPool, n int) {
	buf := p.Get(n) // want "overwritten while still live"
	buf = p.Get(2 * n)
	p.Put(buf)
}

// calleeBorn receives a pool-born buffer from a helper and drops it on the
// success path (the error path legitimately propagates the sibling error).
func calleeBorn(p *sparse.VecPool, n int) (float64, error) {
	buf, err := helperBorn(p, n) // want "not returned to the pool"
	if err != nil {
		return 0, err
	}
	total := buf[0]
	return total, nil
}

func helperBorn(p *sparse.VecPool, n int) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("empty")
	}
	return p.Get(n), nil
}
