// Pool-discipline shapes the poolescape analyzer must accept: ping-pong
// moves, ownership transfer through returns, escapes into structures the
// caller owns, and shared buffers captured by worker closures.
package fake

import (
	"errors"

	"github.com/performability/csrl/internal/sparse"
)

// pingPong swaps two live buffers each iteration — a parallel assignment is
// a move, not a leak — and Puts both before transferring the result out.
func pingPong(p *sparse.VecPool, n, iters int) []float64 {
	cur := p.Get(n)
	next := p.Get(n)
	for i := 0; i < iters; i++ {
		for j := range next {
			next[j] = cur[j] * 0.5
		}
		cur, next = next, cur
	}
	out := make([]float64, n)
	copy(out, cur)
	p.Put(cur)
	p.Put(next)
	return out
}

// transferOut hands ownership to the caller by returning the buffer: the
// Put obligation moves with it.
func transferOut(p *sparse.VecPool, n int) []float64 {
	buf := p.Get(n)
	for i := range buf {
		buf[i] = 1
	}
	return buf
}

// siblingErr receives a pool-born buffer and an error from the same call:
// when the error is non-nil the callee never handed a buffer over, so the
// early return owes nothing, and the success path Puts as usual.
func siblingErr(p *sparse.VecPool, n int) (float64, error) {
	buf, err := bornOrErr(p, n)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, v := range buf {
		total += v
	}
	p.Put(buf)
	return total, nil
}

func bornOrErr(p *sparse.VecPool, n int) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("empty")
	}
	return p.Get(n), nil
}

type rowHolder struct {
	row []float64
}

// escapeToField stores the buffer into a structure that outlives the call:
// ownership escapes the function and the analyzer stops tracking it.
func escapeToField(p *sparse.VecPool, h *rowHolder, n int) {
	row := p.Get(n)
	h.row = row
}

// sharedWorker lends the buffer to a goroutine closure: the buffer is
// shared, the closure is trusted, and the Put after the work still counts.
func sharedWorker(p *sparse.VecPool, n int) float64 {
	buf := p.Get(n)
	done := make(chan struct{})
	go func() {
		for i := range buf {
			buf[i] = float64(i)
		}
		close(done)
	}()
	<-done
	total := buf[0]
	p.Put(buf)
	return total
}
