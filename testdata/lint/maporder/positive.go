// Positive cases for the maporder analyzer: order-sensitive map-range
// bodies — float accumulation, unsorted result slices, and output.
package fake

import "fmt"

func sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "float accumulation into total"
	}
	return total
}

func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want "append to ks"
	}
	return ks
}

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "output written while ranging over a map"
	}
}

func weighted(m map[int]float64, w []float64) float64 {
	var acc float64
	for s, p := range m {
		acc -= p * w[s] // want "float accumulation into acc"
	}
	return acc
}
