// Negative cases for the maporder analyzer: the sorted-keys idiom,
// order-insensitive bodies, loop-local accumulation, and suppression.
package fake

import (
	"fmt"
	"sort"
)

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k) // sorted below, so the random order never escapes
	}
	sort.Strings(ks)
	return ks
}

func sortedSum(m map[string]float64) float64 {
	var total float64
	for _, k := range sortedKeys(m) {
		total += m[k] // ranges over a sorted slice, not the map
	}
	return total
}

func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer addition is associative; order cannot change it
	}
	return total
}

func clone(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func scale(m map[string]float64, f float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		v *= f // loop-local: dies with the iteration
		out[k] = v
	}
	return out
}

func debugDump(m map[string]int) {
	for k := range m {
		fmt.Println(k) //lint:ignore maporder debug output, order genuinely does not matter
	}
}
