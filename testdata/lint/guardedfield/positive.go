// Positive cases for the guardedfield analyzer: unlocked accesses to
// annotated fields, a missing annotation on a mutex-adjacent map, and an
// annotation naming a non-mutex.
package fake

import "sync"

type cache struct {
	mu    sync.Mutex
	items map[string]int // guarded by mu
}

type stale struct {
	mu   sync.Mutex
	data map[string]int // want "lacks a"
}

type broken struct {
	mu sync.Mutex
	m  map[string]int // guarded by lock // want "not a mutex field"
}

func (c *cache) get(k string) int {
	return c.items[k] // want "read of c.items"
}

func (c *cache) put(k string, v int) {
	c.items[k] = v // want "write of c.items"
}

func (c *cache) unlockTooEarly(k string) int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.items[k] // want "read of c.items"
}

func (c *cache) escapes() *map[string]int {
	c.mu.Lock()
	c.mu.Unlock()
	return &c.items // want "write of c.items"
}

type rwcache struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func (r *rwcache) writeUnderRLock(k string, v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.m[k] = v // want "write of r.m"
}

func (r *rwcache) closureLoses(k string) func() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return func() int {
		return r.m[k] // want "read of r.m"
	}
}
