// Negative cases for the guardedfield analyzer: properly locked accesses,
// construction through composite literals, RWMutex read contracts, structs
// without mutexes, and explicit suppression.
package fake

import "sync"

type okCache struct {
	mu    sync.Mutex
	items map[string]int // guarded by mu
	warm  []int          //lint:ignore guardedfield written once during construction, read-only afterwards
}

func newOkCache() *okCache {
	return &okCache{
		items: make(map[string]int),
		warm:  []int{1, 2, 3},
	}
}

func (c *okCache) get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.items[k]
}

func (c *okCache) swap(k string, v int) int {
	c.mu.Lock()
	old := c.items[k]
	c.items[k] = v
	c.mu.Unlock()
	return old
}

func (c *okCache) conditional(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v > 0 {
		c.items[k] = v // lock acquired in the enclosing block still dominates
	}
}

type rwOk struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func (r *rwOk) read(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k] // reads under RLock are the RWMutex contract
}

func (r *rwOk) write(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k] = v
}

// plain has no mutex, so its map field needs no annotation.
type plain struct {
	m map[string]int
}

func (p *plain) get(k string) int {
	return p.m[k]
}
