// Negative cases for the aliasret analyzer: copies, locally built slices
// and unexported helpers are fine even in internal/sparse.
package sparse

type Vector struct {
	val []float64
}

// Unexported: package-internal callers share buffers deliberately.
func (v *Vector) raw() []float64 { return v.val }

func (v *Vector) Values() []float64 {
	out := make([]float64, len(v.val))
	copy(out, v.val)
	return out
}

func (v *Vector) Appended() []float64 { return append([]float64(nil), v.val...) }

func (v *Vector) Sum() float64 {
	s := 0.0
	for _, x := range v.raw() {
		s += x
	}
	return s
}

func Fresh(n int) []float64 { return make([]float64, n) }
