// Negative case for the aliasret analyzer: packages outside
// internal/sparse and internal/mrm are out of scope (this file is checked
// under a different internal import path).
package fake

type Box struct {
	data []int
}

func (b *Box) Data() []int { return b.data }
