// Positive cases for the aliasret analyzer, checked as if this file were
// internal/sparse: exported functions leaking internal slice buffers.
package sparse

type Matrix struct {
	val  []float64
	rows [][]float64
}

func (m *Matrix) Values() []float64 { return m.val } // want "returns internal slice m.val without copying"

func (m *Matrix) Row(i int) []float64 { return m.rows[i] } // want "returns internal slice m.rows without copying"

func (m *Matrix) Window(a, b int) []float64 { return m.val[a:b] } // want "returns internal slice m.val without copying"

var scratch = make([]float64, 64)

func Scratch() []float64 { return scratch } // want "returns internal slice scratch without copying"
