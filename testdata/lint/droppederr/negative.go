// Negative cases for the droppederr analyzer: handled errors, never-fail
// in-memory writers, best-effort std streams and defers stay silent.
package fake

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func check() error { return errors.New("boom") }

func compute() (float64, error) { return 1, nil }

func handleThem() (float64, error) {
	if err := check(); err != nil {
		return 0, fmt.Errorf("wrapped: %w", err)
	}
	v, err := compute()
	if err != nil {
		return 0, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v=%g", v)       // strings.Builder never fails
	fmt.Fprintln(os.Stderr, b.Len()) // best-effort std stream
	fmt.Println("done")              // fmt.Print* is best-effort by convention
	defer check()                    // defers have no useful control path
	return v, nil
}
