// Positive cases for the droppederr analyzer, checked as if this file
// lived in an internal package (so its own functions count as internal
// APIs).
package fake

import "errors"

func validate() error { return errors.New("invalid") }

func solve() (float64, error) { return 0, errors.New("no convergence") }

func dropThem() float64 {
	validate()      // want "validate returns an error that is silently dropped"
	_ = validate()  // want "error from internal API validate discarded with _"
	v, _ := solve() // want "error from internal API solve discarded with _"
	return v
}
