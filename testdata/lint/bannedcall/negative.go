// Negative cases for the bannedcall analyzer: command packages may print,
// exit and panic, and math.Pow with large or non-constant exponents is the
// right tool.
package main

import (
	"fmt"
	"math"
	"os"
)

func main() {
	fmt.Println("fine in a command")
	x := 1.5
	_ = x * x                              // already multiplied out
	_ = math.Pow(x, 7.5)                   // fractional exponent
	_ = math.Pow(x, 12)                    // large exponent: Pow is the right call
	_ = math.Pow(x, float64(len(os.Args))) // non-constant exponent
	if len(os.Args) > 9 {
		panic("too many arguments")
	}
	os.Exit(0)
}
