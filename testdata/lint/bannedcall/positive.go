// Positive cases for the bannedcall analyzer, checked as if this file
// lived in an internal library package.
package fake

import (
	"fmt"
	"math"
	"os"
)

func report(x float64) float64 {
	fmt.Println("value:", x) // want "fmt.Println writes to stdout from library package"
	fmt.Printf("%g\n", x)    // want "fmt.Printf writes to stdout from library package"
	println("debug", x)      // want "builtin println writes to stderr"
	if x < 0 {
		panic("negative input") // want "panic in library package"
	}
	if x > 1e300 {
		os.Exit(1) // want "os.Exit in library package"
	}
	return math.Pow(x, 2) // want "math.Pow(x, 2)"
}

func cube(x float64) float64 {
	return math.Pow(x, 3) // want "math.Pow(x, 3)"
}

func reciprocal(x float64) float64 {
	return math.Pow(x, -1) // want "math.Pow(x, -1)"
}
