// Cases for directive validation, asserted directly by TestIgnoreDirectives:
// a reason-less directive and an unknown analyzer name are both reported,
// and neither suppresses the finding it sits on.
package fake

func missingReason(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b
}

func unknownAnalyzer(a, b float64) bool {
	//lint:ignore nosuchcheck the reason does not rescue an unknown name
	return a == b
}
