// Negative cases for the suppression mechanism: a well-formed
// //lint:ignore directive on the flagged line or the line above silences
// exactly the named analyzer.
package fake

func aboveLine(a, b float64) bool {
	//lint:ignore floatcmp exact equality is the documented contract of this helper
	return a == b
}

func sameLine(a, b float64) bool {
	return a != b //lint:ignore floatcmp exact inequality is intentional here
}
