// Regression cases for directive extent matching: a diagnostic whose
// construct spans several lines must honour an end-of-line directive on
// any line it covers — in particular the last one, where gofmt puts the
// wrapped operand.
package fake

func wrappedSuppressed(a, b float64) bool {
	return a ==
		b //lint:ignore floatcmp exact equality is the documented contract of this helper
}

func wrappedFlagged(a, b float64) bool {
	return a != // want "floating-point != comparison"
		b
}
