// Negative cases for the floatcmp analyzer: the approved comparison
// patterns must stay silent.
package fake

import "math"

// The sparse-skip idiom: values assigned exactly zero compare exactly.
func skipZero(x float64) bool { return x == 0 }

func skipZeroFlipped(x float64) bool { return 0.0 != x }

// The NaN self-test.
func isNaN(x float64) bool { return x != x }

// Tolerance helpers themselves need exact semantics for infinities.
func approxEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

// Integer comparisons are not the analyzer's business.
func intEqual(a, b int) bool { return a == b }
