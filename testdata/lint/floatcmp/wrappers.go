// Floatcmp v2 cases: the tolerance-helper exemption follows local
// aliases (function literals bound to approved names) and bool-returning
// wrappers that delegate to an approved helper — and nothing else.
package fake

import "math"

func approxEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

// A function literal bound to an approved name carries the exemption.
func viaAlias(xs, ys []float64) bool {
	almostEqual := func(a, b float64) bool {
		if math.IsInf(a, 0) || math.IsInf(b, 0) {
			return a == b
		}
		return math.Abs(a-b) <= 1e-12
	}
	for i := range xs {
		if !almostEqual(xs[i], ys[i]) {
			return false
		}
	}
	return true
}

// A bool-returning wrapper that routes its finite cases through an
// approved helper may compare exactly for the infinity fast path.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return approxEqual(a, b, 1e-9)
}

// An unapproved name on the literal gets no exemption.
func viaUnapprovedAlias(a, b float64) bool {
	same := func(x, y float64) bool { return x == y } // want "floating-point == comparison"
	return same(a, b)
}

// A float-returning function is no tolerance wrapper: its raw comparison
// is flagged even though it calls an approved helper.
func pickCloser(a, b, target float64) float64 {
	if approxEqual(a, target, 1e-9) {
		return a
	}
	if a == b { // want "floating-point == comparison"
		return a
	}
	return b
}
