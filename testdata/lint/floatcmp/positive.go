// Positive cases for the floatcmp analyzer: naked equality between
// floating-point operands, checked as if this file lived in an internal
// library package.
package fake

func probEqual(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func notConverged(delta, tol float64) bool {
	return delta != tol // want "floating-point != comparison"
}

func exactOne(p float64) bool {
	return p == 1 // want "floating-point == comparison"
}

func mixedWidth(x float32, y float32) bool {
	return x == y // want "floating-point == comparison"
}
