// Positive cases for the probrange analyzer: prob-annotated values whose
// interval provably escapes [0,1].
package fake

// residualMass returns the mass not yet accounted for; the unclamped
// running sum can exceed 1, so the residue can go negative.
//
//numerics:domain prob masses=prob
func residualMass(masses []float64) float64 {
	s := 0.0
	for _, m := range masses {
		s += m
	}
	return 1 - s // want "may go negative"
}

//numerics:domain prob p=prob q=prob
func totalMass(p, q float64) float64 {
	return p + q // want "may exceed 1"
}

//numerics:domain prob p=prob
func negatedMass(p float64) float64 {
	return -p // want "may go negative"
}

//numerics:domain p=prob
func chargeMass(p float64) float64 { return p }

//numerics:domain a=prob b=prob
func overCharge(a, b float64) float64 {
	return chargeMass(a + b) // want "may exceed 1"
}
