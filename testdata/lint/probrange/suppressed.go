// Suppression case for the probrange analyzer.
package fake

//numerics:domain prob p=prob q=prob
func knownOverflow(p, q float64) float64 {
	//lint:ignore probrange the caller normalises the sum immediately afterwards
	return p + q
}
