// Negative cases for the probrange analyzer: clamped, multiplied and
// unknown values stay silent.
package fake

import "math"

// The clamp idiom narrows the running sum on both branch edges.
//
//numerics:domain prob masses=prob
func residualClamped(masses []float64) float64 {
	s := 0.0
	for _, m := range masses {
		s += m
	}
	if s > 1 {
		s = 1
	}
	return 1 - s
}

// math.Min clamps without a branch.
//
//numerics:domain prob masses=prob
func residualMin(masses []float64) float64 {
	s := 0.0
	for _, m := range masses {
		s += m
	}
	return 1 - math.Min(s, 1)
}

// A product of masses stays in [0,1].
//
//numerics:domain prob p=prob q=prob
func productMass(p, q float64) float64 { return p * q }

//numerics:domain prob p=prob q=prob
func clampedSum(p, q float64) float64 {
	return math.Min(p+q, 1)
}

// math.Max floors a possibly-negative residue.
//
//numerics:domain prob masses=prob
func residualFloor(masses []float64) float64 {
	s := 0.0
	for _, m := range masses {
		s += m
	}
	return math.Max(0, 1-s)
}

// An unannotated operand leaves the interval unknown: no finding.
//
//numerics:domain prob
func unknownStays(x float64) float64 { return x }
