// Temporary repro for stale-memo false negative.
package fake

//numerics:domain p=prob
func probSink(p float64) float64 { return p }

//numerics:domain w=prob
func accumRepro(n int, w float64) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		probSink(s) // use before += forces phi evaluation first
		s += w
		probSink(s) // s here can exceed 1 — should be flagged
	}
	return s
}
