// Positive cases for the mutexcopy analyzer: sync primitives duplicated
// through receivers, parameters, results, assignments and range clauses.
package fake

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) value() int { // want "value receiver copies sync.Mutex"
	return c.n
}

func inspect(c counter) int { // want "parameter copies sync.Mutex"
	return c.n
}

func copyAssign(c *counter) int {
	local := *c // want "assignment copies sync.Mutex"
	return local.n
}

func reassign(a, b *counter) {
	*a = *b // want "assignment copies sync.Mutex"
}

func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { // want "range value variable copies sync.Mutex"
		total += c.n
	}
	return total
}

type job struct {
	wg   sync.WaitGroup
	name string
}

func steal(j *job) job { // want "result copies sync.WaitGroup"
	return *j
}

type deep struct {
	inner [2]counter
}

func nested(d deep) int { // want "parameter copies sync.Mutex"
	return d.inner[0].n
}
