// Negative cases for the mutexcopy analyzer: pointer plumbing, fresh
// values, lock-free structs, and an explicitly suppressed snapshot read.
package fake

import "sync"

type gauge struct {
	mu sync.Mutex
	n  int
}

func (g *gauge) inc() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func update(g *gauge, d int) {
	g.mu.Lock()
	g.n += d
	g.mu.Unlock()
}

func newGauge() *gauge {
	return &gauge{}
}

func fresh() {
	var wg sync.WaitGroup // a declaration creates, it does not copy
	wg.Add(1)
	go1 := func() { wg.Done() }
	go1()
	wg.Wait()
}

func pointers(gs []*gauge) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

type point struct{ x, y float64 }

func plain(ps []point) float64 {
	var total float64
	for _, p := range ps { // no lock inside, copying is fine
		total += p.x + p.y
	}
	return total
}

type snapshot struct {
	mu sync.Mutex
	v  int
}

func (s snapshot) reading() int { //lint:ignore mutexcopy value receiver reads an already-published snapshot
	return s.v
}
