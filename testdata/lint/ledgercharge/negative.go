// Charge-discipline shapes the ledgercharge analyzer must accept.
package fake

import (
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/obs"
)

// charged charges both tails behind the usual nil guard: a nil Recorder
// means observability is off, and both arms of the guard count as charged.
func charged(q, eps float64, rec *obs.Recorder) (int, error) {
	w, err := numeric.FoxGlynn(q, eps)
	if err != nil {
		return 0, err
	}
	if rec != nil {
		rec.Charge("foxglynn", "left-tail", w.LeftTailMass)
		rec.Charge("foxglynn", "right-tail", w.RightTailMass)
	}
	return len(w.W), nil
}

// passthrough is annotated: the charge duty moves to its callers, and its
// own body carries no obligation.
//
//numerics:truncates foxglynn/left-tail foxglynn/right-tail
func passthrough(q, eps float64) (*numeric.PoissonWeights, error) {
	return numeric.FoxGlynn(q, eps)
}

// errorOnly truncates and then fails: the result is discarded with the
// error, so the failure path owes the ledger nothing.
func errorOnly(q, eps float64) error {
	_, err := numeric.FoxGlynn(q, eps)
	if err != nil {
		return err
	}
	return errAlways()
}

func errAlways() error { return nil }

// viaAnnotatedHelper calls the annotated passthrough and charges: the
// obligation transfers through the annotation and is met here.
func viaAnnotatedHelper(q, eps float64, rec *obs.Recorder) error {
	w, err := passthrough(q, eps)
	if err != nil {
		return err
	}
	if rec != nil {
		rec.Charge("foxglynn", "left-tail", w.LeftTailMass)
		rec.Charge("foxglynn", "right-tail", w.RightTailMass)
	}
	return nil
}
