// Truncation sites whose dropped mass never reaches the error-budget
// ledger, plus annotation labels outside the canonical vocabulary.
package fake

import (
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/obs"
)

// uncharged drops the Fox–Glynn tails on the floor: the success path
// returns without a ledger charge.
func uncharged(q, eps float64) (int, error) {
	w, err := numeric.FoxGlynn(q, eps) // want "not charged to the ledger"
	if err != nil {
		return 0, err
	}
	return len(w.W), nil
}

// oneArmOnly charges on the fast path but lets the slow path leave the
// function silently.
func oneArmOnly(q, eps float64, rec *obs.Recorder, fast bool) error {
	w, err := numeric.FoxGlynn(q, eps) // want "not charged to the ledger"
	if err != nil {
		return err
	}
	if fast {
		rec.Charge("foxglynn", "left-tail", w.LeftTailMass)
		rec.Charge("foxglynn", "right-tail", w.RightTailMass)
		return nil
	}
	return nil
}

// indicativeOnly mistakes the advisory section for the bounded ledger:
// ChargeIndicative does not discharge the obligation.
func indicativeOnly(q, eps float64, rec *obs.Recorder) error {
	w, err := numeric.FoxGlynn(q, eps) // want "not charged to the ledger"
	if err != nil {
		return err
	}
	rec.ChargeIndicative("foxglynn", "left-tail", w.LeftTailMass)
	return nil
}

// badLabels carries annotation labels the ledger vocabulary does not know:
// a typo here silently fragments the numerics report.
//
//numerics:truncates foxglyn/left-tail // want "unknown component"
func badLabels(q, eps float64) (*numeric.PoissonWeights, error) {
	return numeric.FoxGlynn(q, eps)
}

//numerics:truncates sericola/series-remaindr // want "unknown term"
func badTerm(q, eps float64) (int, error) {
	return numeric.PoissonTruncation(q, eps)
}
