// Positive cases for the goroutinemisuse analyzer: raw go statements,
// wg.Add in the spawned body, parallel regions entered under a lock, and
// regions nested inside worker bodies.
package fake

import (
	"sync"

	"github.com/performability/csrl/internal/parallel"
)

func rawGo(ch chan int) {
	go func() { ch <- 1 }() // want "raw go statement"
}

func addInside(n int, work func()) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() { // want "raw go statement"
			wg.Add(1) // want "wg.Add inside the spawned goroutine"
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

var mu sync.Mutex

func underLock(xs []float64) {
	mu.Lock()
	defer mu.Unlock()
	parallel.For(0, len(xs), func(lo, hi int) { // want "parallel region entered while holding mu"
		for i := lo; i < hi; i++ {
			xs[i] *= 2
		}
	})
}

func nested(xs []float64) {
	parallel.For(0, len(xs), func(lo, hi int) {
		parallel.Do(func() {}) // want "nested inside a worker body"
	})
}
