// Negative cases for the goroutinemisuse analyzer: pooled fan-out,
// Add-before-spawn, inner regions forced sequential, locks released before
// the region, and an explicitly suppressed raw goroutine.
package fake

import (
	"sync"

	"github.com/performability/csrl/internal/parallel"
)

func pooled(xs []float64) {
	parallel.For(0, len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] *= 2
		}
	})
}

func addBefore(n int, work func()) {
	var wg sync.WaitGroup
	wg.Add(n)
	tasks := make([]func(), n)
	for i := range tasks {
		tasks[i] = func() {
			defer wg.Done()
			work()
		}
	}
	parallel.Do(tasks...)
	wg.Wait()
}

func nestedSequential(xs []float64) {
	parallel.For(0, len(xs), func(lo, hi int) {
		parallel.For(1, hi-lo, func(a, b int) {
			for i := a; i < b; i++ {
				xs[lo+i] *= 2
			}
		})
	})
}

var mu2 sync.Mutex

func lockReleasedFirst(xs []float64) {
	mu2.Lock()
	n := len(xs)
	mu2.Unlock()
	parallel.For(0, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] *= 2
		}
	})
}

func suppressedRawGo(ch chan int) {
	go func() { ch <- 1 }() //lint:ignore goroutinemisuse benchmark harness needs an untracked goroutine
}
