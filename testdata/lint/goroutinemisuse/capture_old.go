// Loop-variable capture cases, type-checked as if the module declared
// `go 1.21`: before per-iteration loop variables, a goroutine that
// captures the iteration variable sees whatever value the loop has
// advanced to by the time it runs.
package fake

func rangeCapture(xs []int, out chan int) {
	for _, x := range xs {
		go func() { // want "raw go statement"
			out <- x // want "captures loop variable x"
		}()
	}
}

func forCapture(xs []int, out chan int) {
	for i := 0; i < len(xs); i++ {
		go func() { // want "raw go statement"
			out <- xs[i] // want "captures loop variable i"
		}()
	}
}

func shadowed(xs []int, out chan int) {
	for _, x := range xs {
		x := x
		go func() { // want "raw go statement"
			out <- x // the shadow is per-iteration, no capture hazard
		}()
	}
}
