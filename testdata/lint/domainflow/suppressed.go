// Suppression case for the domainflow analyzer: a //lint:ignore
// directive with a reason silences a mixing finding.
package fake

import "math"

//numerics:domain log
func logw(x float64) float64 { return math.Log(x) }

//numerics:domain prob
func pm() float64 { return 0.5 }

func deliberateMix() float64 {
	//lint:ignore domainflow demonstrating a documented suppression
	return logw(2) + pm()
}
