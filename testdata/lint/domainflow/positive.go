// Positive cases for the domainflow analyzer: log/linear mixing, double
// exponentiation, log-of-log, parameter and return domain conflicts, and
// malformed annotations.
package fake

import "math"

// logPoisson returns the log-space Poisson weight.
//
//numerics:domain log
func logPoisson(lambda float64, n int) float64 {
	return float64(n)*math.Log(lambda) - lambda
}

// mass returns a linear probability mass.
//
//numerics:domain prob
func mass() float64 { return 0.5 }

// A log-space weight added to a linear mass is the classic underflow
// bug: the weight had to be exponentiated first.
func mixAdd(lambda float64) float64 {
	w := logPoisson(lambda, 3)
	p := mass()
	return w + p // want "mixes log-space and linear-space values"
}

// inferredLog is unannotated; its log-space result is inferred bottom-up
// through the summary engine.
func inferredLog(lambda float64) float64 { return logPoisson(lambda, 4) }

func mixInferred(lambda float64) float64 {
	p := mass()
	return inferredLog(lambda) + p // want "mixes log-space and linear-space values"
}

func doubleExp(x float64) float64 {
	e := math.Exp(x)
	return math.Exp(e) // want "double exponentiation"
}

func expOfProb() float64 {
	p := mass()
	return math.Exp(p) // want "math.Exp applied to a prob-domain value"
}

func logOfLog(lambda float64) float64 {
	w := logPoisson(lambda, 2)
	return math.Log(w) // want "math.Log applied to a log-space value"
}

// accumulateMass folds a linear mass into a running total.
//
//numerics:domain p=prob
func accumulateMass(total, p float64) float64 {
	return total + p
}

func passesLogMass(lambda float64) float64 {
	w := logPoisson(lambda, 1)
	return accumulateMass(0, w) // want "passes a log-space value to parameter p"
}

// claimedProb declares a prob result but computes a log-space weight.
//
//numerics:domain prob
func claimedProb(lambda float64) float64 {
	return math.Log(lambda) // want "declares //numerics:domain prob"
}

//numerics:domain frob // want "unknown domain frob"
func badDomainTok() float64 { return 0 }

//numerics:domain q=prob // want "no parameter named q"
func badParamName(p float64) float64 { return p }
