// Negative cases for the domainflow analyzer: legal domain arithmetic
// must stay silent.
package fake

import "math"

// uniformisationRate returns the linear-space rate q·t.
//
//numerics:domain rate
func uniformisationRate(q, t float64) float64 { return q * t }

// logWeight computes the log-space Poisson exponent −qt + n·log(qt).
// Rates legally mix into log-space exponent arithmetic.
//
//numerics:domain log
func logWeight(q, t float64, n int) float64 {
	qt := uniformisationRate(q, t)
	return float64(n)*math.Log(qt) - qt
}

//numerics:domain prob
func massA() float64 { return 0.25 }

//numerics:domain prob
func massB() float64 { return 0.5 }

// Two linear masses add in the same family.
func sumMasses() float64 { return massA() + massB() }

// One exponentiation converts a log weight back to linear space.
func backToLinear(q, t float64) float64 {
	return math.Exp(logWeight(q, t, 2))
}

// Taking the log of a linear mass converts it into log space.
func toLogSpace() float64 { return math.Log(massA()) }

// scaledWeight is unannotated: its log domain is inferred bottom-up, so
// adding it to another log weight is consistent.
func scaledWeight(q, t float64) float64 { return logWeight(q, t, 3) }

func combined(q, t float64) float64 {
	return scaledWeight(q, t) + logWeight(q, t, 1)
}

// Unknown operands never participate in findings.
func unknownMix(x float64, q, t float64) float64 {
	return x + logWeight(q, t, 1)
}
