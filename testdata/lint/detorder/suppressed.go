// Suppression case for the detorder analyzer: a //lint:ignore directive
// with a reason silences one accumulation finding.
package fake

func suppressedFold(partials []float64, workers int) float64 {
	s := 0.0
	for w := 0; w < workers; w++ {
		//lint:ignore detorder the partials are rounded to a fixed grid before folding
		s += partials[w]
	}
	return s
}
