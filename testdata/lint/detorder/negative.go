// Negative cases for the detorder analyzer: per-iteration accumulators,
// non-worker loops, integer folds, per-element parallel writes and a
// verified order-invariant annotation all stay silent.
package fake

import "github.com/performability/csrl/internal/parallel"

// rowCuts partitions n rows into t contiguous chunks.
func rowCuts(n, t int) []int {
	cuts := make([]int, t+1)
	for i := range cuts {
		cuts[i] = i * n / t
	}
	return cuts
}

// tFold deliberately folds per-worker partials; the fan-out is pinned to
// the rowCuts partition, and the claim is verified against the body.
//
//numerics:order-invariant fanout=rowCuts the partition is pinned by rowCuts so block and vector paths agree
func tFold(xs []float64, workers int) float64 {
	cuts := rowCuts(len(xs), workers)
	s := 0.0
	for w := 0; w+1 < len(cuts); w++ {
		s += xs[cuts[w]]
	}
	return s
}

// A per-iteration accumulator resets each pass: the fold order inside one
// worker's chunk does not depend on the worker count.
func perWorkerPartials(bufs [][]float64, workers int) []float64 {
	out := make([]float64, workers)
	for w := 0; w < workers; w++ {
		s := 0.0
		for _, v := range bufs[w] {
			s += v
		}
		out[w] = s
	}
	return out
}

// Integer accumulation is exact in any order.
func countItems(xs []int, workers int) int {
	n := 0
	for w := 0; w < workers; w++ {
		n += xs[w]
	}
	return n
}

// A loop bounded by the data size, not the worker count.
func plainSum(xs []float64) float64 {
	s := 0.0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}

// Per-element indexed writes inside a parallel task are per-index, not a
// shared fold.
func scaleInPlace(y, xs []float64) {
	parallel.For(0, len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += xs[i]
		}
	})
}
