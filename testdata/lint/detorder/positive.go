// Positive cases for the detorder analyzer: float reductions whose order
// depends on the worker count, and bad order-invariant annotations.
package fake

import (
	"runtime"

	"github.com/performability/csrl/internal/parallel"
)

// rowCuts partitions n rows into t contiguous chunks.
func rowCuts(n, t int) []int {
	cuts := make([]int, t+1)
	for i := range cuts {
		cuts[i] = i * n / t
	}
	return cuts
}

// Folding per-worker partials in a loop bounded by the worker count.
func sumPartials(partials []float64, workers int) float64 {
	s := 0.0
	for w := 0; w < workers; w++ {
		s += partials[w] // want "float accumulation into s inside a worker-count-shaped loop"
	}
	return s
}

// The buffer count derives from the rowCuts partition, which derives from
// the worker count: ranging over it is worker-count-shaped.
func reduceBufs(xs []float64, workers int) []float64 {
	cuts := rowCuts(len(xs), workers)
	bufs := make([][]float64, len(cuts)-1)
	for i := range bufs {
		bufs[i] = make([]float64, len(xs))
	}
	y := make([]float64, len(xs))
	for i := 0; i < len(xs); i++ {
		for k := range bufs {
			y[i] += bufs[k][i] // want "float accumulation into y"
		}
	}
	return y
}

// runtime.NumCPU seeds the taint directly.
func cpuFold(xs []float64) float64 {
	t := runtime.NumCPU()
	total := 0.0
	for w := 0; w < t; w++ {
		total += xs[w] // want "float accumulation into total"
	}
	return total
}

// A captured scalar accumulated inside a parallel task literal.
func racyFold(xs []float64) float64 {
	s := 0.0
	parallel.For(0, len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s += xs[i] // want "captured float accumulator s inside a parallel.For task"
		}
	})
	return s
}

// The annotation needs a reason.
//
//numerics:order-invariant // want "needs a reason"
func badReason(partials []float64, workers int) float64 {
	s := 0.0
	for w := 0; w < workers; w++ {
		s += partials[w]
	}
	return s
}

// The fanout claim names a helper the function never calls.
//
//numerics:order-invariant fanout=rowCuts partials are partition sums // want "never calls rowCuts"
func falseClaim(partials []float64, workers int) float64 {
	s := 0.0
	for w := 0; w < workers; w++ {
		s += partials[w]
	}
	return s
}

// The fanout claim names a helper the function calls, but not with a
// worker-derived argument.
//
//numerics:order-invariant fanout=rowCuts the partition is fixed // want "no argument of the rowCuts call is worker-derived"
func staleClaim(partials []float64, workers int) float64 {
	cuts := rowCuts(len(partials), 4)
	s := 0.0
	for w := 0; w < workers; w++ {
		s += partials[cuts[0]+w]
	}
	return s
}
