// Negative cases for the expunderflow analyzer: this file is checked as if
// it lived in internal/numeric, the one package allowed to hand-roll
// log-space probability terms (it defines the sanctioned helpers).
package numeric

import "math"

func pmfInsideNumeric(q float64, n int, lf []float64) float64 {
	return math.Exp(-q + float64(n)*math.Log(q) - lf[n])
}

func expOfSum(a, b float64) float64 {
	return math.Exp(a + b)
}
