// Positive cases for the expunderflow analyzer, checked as if this file
// lived in an internal package other than internal/numeric.
package fake

import "math"

func productOfExps(a, b float64) float64 {
	return math.Exp(a) * math.Exp(b) // want "product of math.Exp calls"
}

func chainOfExps(a, b, c float64) float64 {
	return math.Exp(a) * c * math.Exp(b) // want "product of math.Exp calls"
}

func logExpRoundTrip(x float64) float64 {
	return math.Log(math.Exp(x)) // want "math.Log(math.Exp(x)) is x"
}

func expLogRoundTrip(x float64) float64 {
	return math.Exp(math.Log(x)) // want "math.Exp(math.Log(x)) is x"
}

func handRolledPoisson(q float64, n int, lf []float64) float64 {
	return math.Exp(-q + float64(n)*math.Log(q) - lf[n]) // want "hand-rolled log-space probability term"
}

func cachedLogTerm(logQ float64, n int) float64 {
	return math.Exp(float64(n) * logQ) // want "hand-rolled log-space probability term"
}
