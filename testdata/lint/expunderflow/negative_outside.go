// Negative cases for the expunderflow analyzer outside internal/numeric:
// plain exponentials with no log-domain operands are fine anywhere.
package fake

import "math"

func survival(rate, t float64) float64 {
	return math.Exp(-rate * t)
}

func expOfSum(a, b float64) float64 {
	return math.Exp(a + b)
}

func scaledExp(a, c float64) float64 {
	return c * math.Exp(a) // single Exp factor: no underflow pairing
}
