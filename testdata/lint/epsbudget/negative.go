// Budget-respecting shapes the epsbudget analyzer must accept, including
// the post-PR-5 transient fix: a correlated budget splitter returning
// either (ε/2, ε/2) or (ε, 0), never both halves at full strength.
package fake

import "github.com/performability/csrl/internal/numeric"

// steadyTail stands in for the steady-state detector's tail spend (each
// golden file is type-checked as its own single-file package).
//
//numerics:truncates steady/tail-charge
func steadyTail(eps float64) error { return nil }

// split is the budgetSplit shape: with steady-state detection on, both
// consumers get half the budget; with it off, Fox–Glynn gets everything
// and the tail charge gets nothing. The per-return correlation is what
// keeps the sum at exactly ε on every path.
func split(eps float64, steady bool) (float64, float64) {
	if steady {
		return eps / 2, eps / 2
	}
	return eps, 0
}

// distributionNew is the fixed transient sweep: the two spends always sum
// to the whole budget, never more.
func distributionNew(q, eps float64, steady bool) error {
	fgEps, stEps := split(eps, steady)
	if _, err := numeric.FoxGlynn(q, fgEps); err != nil {
		return err
	}
	return steadyTail(stEps)
}

// halves spends disjoint constant fractions summing to exactly 1.
func halves(q, eps float64) error {
	if _, err := numeric.FoxGlynn(q, eps/2); err != nil {
		return err
	}
	return steadyTail(eps / 2)
}

// disjointBranches spends the full budget on either branch, but only one
// branch runs.
func disjointBranches(q, eps float64, fast bool) error {
	if fast {
		_, err := numeric.FoxGlynn(q, eps)
		return err
	}
	return steadyTail(eps)
}

// separateBudgets spends two independent budgets fully: no single origin
// is over-committed.
func separateBudgets(q, fgEps, tailEps float64) error {
	if _, err := numeric.FoxGlynn(q, fgEps); err != nil {
		return err
	}
	return steadyTail(tailEps)
}
