// Package fake reproduces ε-budget double-spends for the epsbudget
// analyzer. The first case is the pre-PR-5 transient bug verbatim: the
// whole accuracy budget was handed to Fox–Glynn AND spent again by the
// steady-state tail charge on the same path, so the computed bound ε was
// silently a 2ε bound.
package fake

import "github.com/performability/csrl/internal/numeric"

// steadyTail stands in for the steady-state detector's tail spend: the
// remaining Poisson mass is charged against the accuracy argument.
//
//numerics:truncates steady/tail-charge
func steadyTail(eps float64) error { return nil }

// distributionOld is the pre-PR-5 shape of the transient sweep: Fox–Glynn
// truncates with the full ε, then steady-state detection spends the full
// ε again — 2ε total along the success path.
func distributionOld(q, eps float64) error {
	if _, err := numeric.FoxGlynn(q, eps); err != nil {
		return err
	}
	return steadyTail(eps) // want "over-committed"
}

// threeHalves splits the budget but spends three halves of it.
func threeHalves(q, eps float64) error {
	if _, err := numeric.FoxGlynn(q, eps/2); err != nil {
		return err
	}
	if err := steadyTail(eps / 2); err != nil {
		return err
	}
	return steadyTail(eps / 2) // want "over-committed"
}

// inLoop spends a fixed fraction per iteration: the total is unbounded.
func inLoop(q, eps float64, rounds int) error {
	for i := 0; i < rounds; i++ {
		if _, err := numeric.FoxGlynn(q, eps/2); err != nil { // want "inside a loop"
			return err
		}
	}
	return nil
}

// throughHelper shows the spend is transitive: the helper spends its whole
// argument, and the caller hands it the full budget twice.
func spendAll(q, eps float64) error {
	_, err := numeric.FoxGlynn(q, eps)
	return err
}

func throughHelper(q, eps float64) error {
	if err := spendAll(q, eps); err != nil {
		return err
	}
	return spendAll(q, eps) // want "over-committed"
}
