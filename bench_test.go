package csrl_test

// One benchmark per table and figure of the paper's evaluation (Section 5),
// plus ablation benchmarks for the design choices called out in DESIGN.md.
// Run them all with:
//
//	go test -bench=. -benchmem
//
// The absolute numbers land on modern hardware, so they will not match the
// paper's 1 GHz Pentium III; the *relative* behaviour (cost growth in ε, k
// and d) is what reproduces Tables 2–4.

import (
	"fmt"
	"math"
	"testing"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/discretise"
	"github.com/performability/csrl/internal/erlang"
	"github.com/performability/csrl/internal/lint"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/lump"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/sericola"
	"github.com/performability/csrl/internal/sim"
	"github.com/performability/csrl/internal/sparse"
	"github.com/performability/csrl/internal/srn"
	"github.com/performability/csrl/internal/transient"
)

func q3Setup(b *testing.B) (*mrm.MRM, *mrm.StateSet, int) {
	b.Helper()
	red, err := adhoc.Q3Reduced()
	if err != nil {
		b.Fatal(err)
	}
	return red.Model, red.Model.Label("goal"), red.Model.InitialState()
}

// BenchmarkTable2Sericola regenerates Table 2: the occupation-time
// distribution algorithm across error bounds ε.
func BenchmarkTable2Sericola(b *testing.B) {
	m, goal, init := q3Setup(b)
	for _, eps := range []float64{1e-2, 1e-4, 1e-8} {
		b.Run(fmt.Sprintf("eps=%.0e", eps), func(b *testing.B) {
			b.ReportAllocs()
			var v float64
			for i := 0; i < b.N; i++ {
				res, err := sericola.ReachProbAll(m, goal, adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound,
					sericola.Options{Epsilon: eps, Lambda: adhoc.PaperLambda})
				if err != nil {
					b.Fatal(err)
				}
				v = res.Values[init]
			}
			b.ReportMetric(v, "probability")
		})
	}
}

// BenchmarkTable3Erlang regenerates Table 3: the pseudo-Erlang
// approximation across phase counts k.
func BenchmarkTable3Erlang(b *testing.B) {
	m, goal, init := q3Setup(b)
	for _, k := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var v float64
			for i := 0; i < b.N; i++ {
				vals, err := erlang.ReachProbAll(m, goal, adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound,
					erlang.Options{K: k})
				if err != nil {
					b.Fatal(err)
				}
				v = vals[init]
			}
			b.ReportMetric(v, "probability")
		})
	}
}

// BenchmarkTable4Discretise regenerates Table 4: the Tijms–Veldman
// discretisation across step sizes d.
func BenchmarkTable4Discretise(b *testing.B) {
	m, goal, init := q3Setup(b)
	for _, den := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("d=1over%d", den), func(b *testing.B) {
			b.ReportAllocs()
			var v float64
			for i := 0; i < b.N; i++ {
				got, err := discretise.ReachProb(m, goal, adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound, init,
					discretise.Options{D: 1 / float64(den), AllowCoarse: den < 20})
				if err != nil {
					b.Fatal(err)
				}
				v = got
			}
			b.ReportMetric(v, "probability")
		})
	}
}

// BenchmarkFigure1Simulation regenerates Figure 1's process: Monte-Carlo
// sampling of the 2-D process (X_t, Y_t) with the absorbing reward barrier.
func BenchmarkFigure1Simulation(b *testing.B) {
	b.ReportAllocs()
	m, goal, init := q3Setup(b)
	s := sim.New(m, 1)
	hits := 0
	for i := 0; i < b.N; i++ {
		est, err := s.ReachProb(init, goal, adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound, 1)
		if err != nil {
			b.Fatal(err)
		}
		if est.Value > 0 {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "hit-fraction")
}

// BenchmarkFigure2SRNGeneration regenerates Figure 2's model: SRN
// reachability-graph construction of the battery-powered station.
func BenchmarkFigure2SRNGeneration(b *testing.B) {
	b.ReportAllocs()
	net, init := adhoc.Net()
	for i := 0; i < b.N; i++ {
		m, _, err := net.BuildMRM(init, srn.Options{Reward: adhoc.Power})
		if err != nil {
			b.Fatal(err)
		}
		if m.N() != 9 {
			b.Fatalf("state space changed: %d", m.N())
		}
	}
}

// BenchmarkQ1RewardBoundedUntil benchmarks the P2 procedure (duality +
// transient analysis) behind property Q1.
func BenchmarkQ1RewardBoundedUntil(b *testing.B) {
	b.ReportAllocs()
	m, err := adhoc.Model()
	if err != nil {
		b.Fatal(err)
	}
	c := core.New(m, core.DefaultOptions())
	f := logic.MustParse("P=? [ F{r<=600} call_incoming ]")
	for i := 0; i < b.N; i++ {
		if _, err := c.Values(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ2TimeBoundedUntil benchmarks the P1 procedure (transient
// analysis of the transformed MRM) behind property Q2.
func BenchmarkQ2TimeBoundedUntil(b *testing.B) {
	b.ReportAllocs()
	m, err := adhoc.Model()
	if err != nil {
		b.Fatal(err)
	}
	c := core.New(m, core.DefaultOptions())
	f := logic.MustParse("P=? [ F{t<=24} call_incoming ]")
	for i := 0; i < b.N; i++ {
		if _, err := c.Values(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ3FullChecker benchmarks the complete Q3 pipeline — parsing,
// satisfaction sets, Theorem 1 reduction and the P3 procedure — for each
// algorithm.
func BenchmarkQ3FullChecker(b *testing.B) {
	m, err := adhoc.Model()
	if err != nil {
		b.Fatal(err)
	}
	f := logic.MustParse("P>0.5 [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]")
	for _, alg := range []core.Algorithm{core.AlgSericola, core.AlgErlang, core.AlgDiscretise} {
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			opts := core.DefaultOptions()
			opts.P3 = alg
			opts.Epsilon = 1e-8
			opts.ErlangK = 256
			opts.DiscretiseStep = 1.0 / 32
			c := core.New(m, opts)
			for i := 0; i < b.N; i++ {
				if _, err := c.Check(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRectangleUntil benchmarks the general-interval until — the
// rectangle hot path whose four F(t,r) corners now advance through the
// checker in two reward-bound batches (one per distinct time bound),
// against the same query on a fresh checker per iteration so the memo
// cannot amortise the reduction across iterations.
func BenchmarkRectangleUntil(b *testing.B) {
	m, err := adhoc.Model()
	if err != nil {
		b.Fatal(err)
	}
	f := logic.MustParse("P=? [ (call_idle | doze) U{t in [6,24], r in [150,600]} call_initiated ]")
	opts := core.DefaultOptions()
	opts.Epsilon = 1e-8
	b.Run("memoised", func(b *testing.B) {
		b.ReportAllocs()
		c := core.New(m, opts)
		for i := 0; i < b.N; i++ {
			if _, err := c.Values(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-checker", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.New(m, opts).Values(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelWorkers is the sequential-vs-parallel pair for the P3
// procedures' parallel engine: each sub-benchmark runs the same workload
// with Workers: 1 (the exact legacy path) and Workers: 0 (all CPUs). On a
// single-core machine the pair should be a wash; the speedup column of
// `perfbench -compare` reports the same contrast with wall-clock times.
func BenchmarkParallelWorkers(b *testing.B) {
	m, goal, _ := q3Setup(b)
	for _, bench := range []struct {
		name string
		run  func(workers int) error
	}{
		{"sericola", func(workers int) error {
			_, err := sericola.ReachProbAll(m, goal, adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound,
				sericola.Options{Epsilon: 1e-6, Lambda: adhoc.PaperLambda, Workers: workers})
			return err
		}},
		{"erlang", func(workers int) error {
			_, err := erlang.ReachProbAll(m, goal, adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound,
				erlang.Options{K: 256, Transient: transient.Options{Epsilon: 1e-12, Workers: workers}})
			return err
		}},
		{"discretise", func(workers int) error {
			_, err := discretise.ReachProbAll(m, goal, 6, 150, discretise.Options{D: 1.0 / 32, Workers: workers})
			return err
		}},
	} {
		for _, w := range []struct {
			label   string
			workers int
		}{{"workers=1", 1}, {"workers=all", 0}} {
			b.Run(bench.name+"/"+w.label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := bench.run(w.workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationPoissonWeights compares Fox–Glynn against the naive
// log-space pmf evaluation for the weight vector of a uniformisation run.
func BenchmarkAblationPoissonWeights(b *testing.B) {
	const q = 468 // λt of the case study
	b.Run("fox-glynn", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := numeric.FoxGlynn(q, 1e-12); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-pmf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, err := numeric.PoissonTruncation(q, 1e-12)
			if err != nil {
				b.Fatal(err)
			}
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += numeric.PoissonPMF(q, k)
			}
			if math.Abs(sum-1) > 1e-6 {
				b.Fatal("weights do not sum to 1")
			}
		}
	})
}

// BenchmarkAblationBackwardVsForwardUntil compares the backward
// uniformisation sweep (one pass for all states) against forward transient
// analysis per initial state for a P1-type until.
func BenchmarkAblationBackwardVsForwardUntil(b *testing.B) {
	m, err := adhoc.Model()
	if err != nil {
		b.Fatal(err)
	}
	phi := mrm.NewStateSet(m.N()).Complement()
	psi := m.Label("call_incoming")
	abs, err := m.MakeAbsorbing(psi, false)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("backward-single-sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := transient.TimeBoundedUntil(m, phi, psi, 24, transient.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forward-per-state", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for s := 0; s < m.N(); s++ {
				init := make([]float64, m.N())
				init[s] = 1
				pi, err := transient.DistributionFrom(abs, init, 24, transient.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				var v float64
				psi.Each(func(j int) { v += pi[j] })
			}
		}
	})
}

// BenchmarkAblationSparseVsDenseMatVec measures the sparse CSR
// matrix-vector product against a dense row-major product on the Erlang
// expansion of the case study (5·256+1 states), the largest matrix the
// paper's evaluation touches.
func BenchmarkAblationSparseVsDenseMatVec(b *testing.B) {
	red, err := adhoc.Q3Reduced()
	if err != nil {
		b.Fatal(err)
	}
	e, err := erlang.Expand(red.Model, adhoc.Q3PaperRewardBound, 256)
	if err != nil {
		b.Fatal(err)
	}
	p, err := e.Model.Uniformised(e.Model.UniformisationRate())
	if err != nil {
		b.Fatal(err)
	}
	n := p.Dim()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	b.Run("sparse-csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.MulVec(y, x)
		}
	})
	dense := p.Dense()
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < n; r++ {
				var s float64
				row := dense[r]
				for c, v := range row {
					s += v * x[c]
				}
				y[r] = s
			}
		}
	})
}

// BenchmarkAblationSolvers compares Gauss–Seidel and Jacobi on the
// unbounded-until linear system of the reduced model (tiny here, but the
// ratio is the point).
func BenchmarkAblationSolvers(b *testing.B) {
	// A random-walk system large enough to show iteration behaviour.
	const n = 500
	builder := sparse.NewBuilder(n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			builder.Add(i, i-1, 0.45)
		}
		if i < n-1 {
			builder.Add(i, i+1, 0.45)
		} else {
			rhs[i] = 0.45
		}
	}
	a, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	opts := numeric.DefaultSolveOptions()
	opts.Tolerance = 1e-10
	b.Run("gauss-seidel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := numeric.SolveGaussSeidel(a, rhs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("jacobi", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := numeric.SolveJacobi(a, rhs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLumping measures formula-dependent lumping (the
// reduction MRMC-style tools apply before CSRL checking) against checking
// the unreduced model, on a left/right-symmetric repairable cluster.
func BenchmarkAblationLumping(b *testing.B) {
	buildCluster := func() *mrm.MRM {
		arc := func(p int) []srn.Arc { return []srn.Arc{{Place: p, Weight: 1}} }
		net := &srn.Net{
			Places: []string{"lu", "ld", "ru", "rd"},
			Transitions: []srn.Transition{
				{Name: "fl", In: arc(0), Out: arc(1), RateFn: func(m srn.Marking) float64 { return 0.1 * float64(m[0]) }},
				{Name: "fr", In: arc(2), Out: arc(3), RateFn: func(m srn.Marking) float64 { return 0.1 * float64(m[2]) }},
				{Name: "rl", In: arc(1), Out: arc(0), Rate: 2},
				{Name: "rr", In: arc(3), Out: arc(2), Rate: 2},
			},
		}
		const perSide = 8
		init := srn.Marking{perSide, 0, perSide, 0}
		m, _, err := net.BuildMRM(init, srn.Options{
			Reward: func(mk srn.Marking) float64 { return float64(mk[1] + mk[3]) },
			Labels: func(mk srn.Marking) []string {
				var ls []string
				if mk[0]+mk[2] >= perSide {
					ls = append(ls, "qos")
				}
				if mk[1]+mk[3] == 0 {
					ls = append(ls, "pristine")
				}
				return ls
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	m := buildCluster()
	formula := logic.MustParse("P=? [ qos U{t<=24, r<=20} pristine ]")
	opts := core.DefaultOptions()
	opts.Epsilon = 1e-7
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		c := core.New(m, opts)
		for i := 0; i < b.N; i++ {
			if _, err := c.Values(formula); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lump-then-check", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := lump.QuotientRespecting(m, []string{"qos", "pristine"})
			if err != nil {
				b.Fatal(err)
			}
			c := core.New(res.Model, opts)
			vals, err := c.Values(formula)
			if err != nil {
				b.Fatal(err)
			}
			_ = res.Lift(vals)
		}
	})
}

// BenchmarkLintModule times the mrmlint analyzer suite over the whole
// module. All registered analyzers share one inspector traversal per
// package, and the dataflow analyzers (epsbudget, ledgercharge, poolescape)
// add CFG construction plus interprocedural summaries on top; running every
// package keeps the whole-module wall time inside the bench-smoke budget
// honest.
func BenchmarkLintModule(b *testing.B) {
	b.ReportAllocs()
	loader, err := lint.NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	dirs, err := loader.Expand(loader.ModuleDir, []string{"./..."})
	if err != nil {
		b.Fatal(err)
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			b.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	runner := lint.NewRunner(lint.All())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pkg := range pkgs {
			if _, err := runner.RunPackage(pkg); err != nil {
				b.Fatal(err)
			}
		}
	}
}
