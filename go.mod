module github.com/performability/csrl

go 1.22
