# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build test race lint bench-smoke fmt vet

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/mrmlint ./...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x .
	$(GO) run ./cmd/perfbench -compare

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
