# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build test race lint lint-github lint-consistency lint-dataflow bench-smoke bench-check serve-smoke fmt vet

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The incremental cache keeps warm runs fast (per-package results keyed
# by source content + dependency keys + the analyzer registry hash, under
# .mrmlint-cache/); CI persists the directory via actions/cache.
lint:
	$(GO) run ./cmd/mrmlint -cache ./...

lint-github:
	$(GO) run ./cmd/mrmlint -github ./...

# go vet's copylocks and mrmlint's mutexcopy approximate the same property
# from different directions; CI requires both to agree the tree is clean.
lint-consistency:
	$(GO) vet -copylocks ./...
	$(GO) run ./cmd/mrmlint -enable=mutexcopy ./...

# Just the CFG/taint-powered discipline analyzers (they are part of the
# default `lint` run too; this target isolates them for iterating on the
# budget/ledger/pool contracts).
lint-dataflow:
	$(GO) run ./cmd/mrmlint -enable=epsbudget,ledgercharge,poolescape ./...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x .
	$(GO) run ./cmd/perfbench -compare
	$(GO) run ./cmd/perfbench -json BENCH_PR7.json -workers-sweep
	$(GO) run ./cmd/mrmlint -bench-json BENCH_PR8.json ./...
	$(GO) run ./cmd/perfbench -scale-json BENCH_PR9.json

# Compare a fresh benchmark run against the committed performance trail;
# exits non-zero on >20% time or >10% allocation regressions, and refuses
# outright when the baseline was recorded on a different CPU count
# (baselines are per machine class — regenerate with bench-smoke).
# The lint leg re-times cold vs warm into a scratch file (the committed
# BENCH_PR8.json is the recorded trail) and fails when the warm cached
# run is not at least twice as fast as cold or replay diverges.
# The scale leg validates the committed BENCH_PR9.json invariants (≥10^5
# states, ≥5× truncated speedup, truncation budget ≤ ε), re-proves the
# budget live on a smaller cluster instance, and gates the automatic lump
# pre-pass against noise on the 9-state seed model.
bench-check:
	$(GO) run ./cmd/perfbench -baseline BENCH_PR7.json -workers-sweep
	$(GO) run ./cmd/mrmlint -bench-json /tmp/mrmlint-bench-check.json ./...
	$(GO) run ./cmd/perfbench -scale-check BENCH_PR9.json

# The service acceptance smoke: an in-process csrld on a real listener,
# station model uploaded over HTTP, 8 concurrent queries fired twice.
# Asserts every response is a 200 whose Σ ≤ ε budget proof passes and
# whose answer is bitwise identical to a one-shot checker, and that the
# second wave is served from the cross-request memo (hits > 0, no new
# misses).
serve-smoke:
	$(GO) run ./cmd/csrld -smoke

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
