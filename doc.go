// Package csrl is a reproduction of "Model Checking Performability
// Properties" (Haverkort, Cloth, Hermanns, Katoen, Baier; DSN 2002): a
// model checker for the continuous stochastic reward logic CSRL over Markov
// reward models, with the paper's three computational procedures for time-
// and reward-bounded until formulas — the pseudo-Erlang approximation, the
// Tijms–Veldman discretisation and Sericola's occupation-time distribution
// algorithm — plus the stochastic-reward-net substrate and the ad-hoc
// networking case study of the paper's evaluation.
//
// The implementation lives under internal/; see README.md for the package
// map, DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's Section 5.
package csrl
