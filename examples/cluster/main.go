// A fault-tolerant workstation cluster in the style of the dependability
// case study the paper cites for CSL ([14], Haverkort–Hermanns–Katoen,
// SRDS 2000): two sub-clusters of N workstations joined by a backbone, a
// single repair unit that prefers the backbone, and a quality-of-service
// predicate "at least k workstations connected". This example shows the
// library on a state space three orders of magnitude beyond the paper's
// 9-state model, and uses impulse rewards (repair call-out costs) on top of
// rate rewards (energy drawn by degraded operation).
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/srn"
)

const (
	workstationsPerSide = 8
	minQoS              = 12 // of 16 workstations
	failRate            = 0.02
	repairRate          = 2.0
	backboneFailRate    = 0.005
	backboneRepairRate  = 4.0
	repairCallOutCost   = 5.0 // impulse per repair action
	degradedEnergyRate  = 1.0 // per broken workstation per hour
)

// Places of the cluster SRN.
const (
	leftUp = iota
	leftDown
	rightUp
	rightDown
	backboneUp
	backboneDown
	numPlaces
)

func buildCluster() (*mrm.MRM, []srn.Marking, error) {
	arc := func(p int) []srn.Arc { return []srn.Arc{{Place: p, Weight: 1}} }
	// The single repair unit prefers the backbone: workstation repairs are
	// guarded on the backbone being up.
	backboneOK := func(m srn.Marking) bool { return m[backboneDown] == 0 }
	net := &srn.Net{
		Places: []string{"left_up", "left_down", "right_up", "right_down", "backbone_up", "backbone_down"},
		Transitions: []srn.Transition{
			{
				Name: "fail_left", In: arc(leftUp), Out: arc(leftDown),
				RateFn: func(m srn.Marking) float64 { return failRate * float64(m[leftUp]) },
			},
			{
				Name: "fail_right", In: arc(rightUp), Out: arc(rightDown),
				RateFn: func(m srn.Marking) float64 { return failRate * float64(m[rightUp]) },
			},
			{
				Name: "repair_left", In: arc(leftDown), Out: arc(leftUp),
				Rate: repairRate, Guard: backboneOK, Impulse: repairCallOutCost,
			},
			{
				Name: "repair_right", In: arc(rightDown), Out: arc(rightUp),
				Rate: repairRate, Guard: backboneOK, Impulse: repairCallOutCost,
			},
			{
				Name: "fail_backbone", In: arc(backboneUp), Out: arc(backboneDown),
				Rate: backboneFailRate,
			},
			{
				Name: "repair_backbone", In: arc(backboneDown), Out: arc(backboneUp),
				Rate: backboneRepairRate, Impulse: repairCallOutCost,
			},
		},
	}
	init := make(srn.Marking, numPlaces)
	init[leftUp] = workstationsPerSide
	init[rightUp] = workstationsPerSide
	init[backboneUp] = 1
	m, markings, err := net.BuildMRM(init, srn.Options{
		Reward: func(mk srn.Marking) float64 {
			return degradedEnergyRate * float64(mk[leftDown]+mk[rightDown])
		},
		Labels: func(mk srn.Marking) []string {
			connected := 0
			if mk[backboneDown] == 0 {
				connected = mk[leftUp] + mk[rightUp]
			}
			var ls []string
			if connected >= minQoS {
				ls = append(ls, "qos")
			}
			if mk[leftDown]+mk[rightDown] == 0 && mk[backboneDown] == 0 {
				ls = append(ls, "pristine")
			}
			return ls
		},
	})
	return m, markings, err
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Now()
	m, markings, err := buildCluster()
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %d reachable states (generated in %v)\n\n", len(markings), time.Since(start).Round(time.Millisecond))

	opts := core.DefaultOptions()
	// The impulse rewards force the discretisation procedure for the P3
	// query below; d = 1/8 satisfies d ≤ 1/max E(s) for this model and
	// divides all bounds and impulses.
	opts.DiscretiseStep = 1.0 / 8
	checker := core.New(m, opts)

	// Long-run QoS (steady-state operator over ~600 states).
	start = time.Now()
	vals, err := checker.Values(logic.MustParse("S=? [ qos ]"))
	if err != nil {
		return err
	}
	fmt.Printf("long-run QoS availability:            %.8f   (%v)\n", vals[0], time.Since(start).Round(time.Millisecond))

	// Time-bounded QoS loss (P1 procedure, backward uniformisation over
	// the full state space in one sweep).
	start = time.Now()
	vals, err = checker.Values(logic.MustParse("P=? [ F{t<=48} !qos ]"))
	if err != nil {
		return err
	}
	fmt.Printf("Pr{lose QoS within 48 h}:             %.8f   (%v)\n", vals[0], time.Since(start).Round(time.Millisecond))

	// The P3 class with impulse rewards: does the cluster stay within a
	// repair-and-energy budget of 100 until it first returns to pristine
	// condition, within a week, having never lost QoS on the way? The
	// impulse call-out costs force the discretisation procedure, which the
	// checker selects automatically.
	start = time.Now()
	vals, err = checker.Values(logic.MustParse("P=? [ qos U{t<=72, r<=60} pristine ]"))
	if err != nil {
		return err
	}
	// From the initial (pristine) state the formula holds trivially; the
	// interesting spread is across the degraded QoS states.
	qos := m.Label("qos")
	worst, worstState := 1.0, -1
	qos.Each(func(s int) {
		if vals[s] < worst {
			worst, worstState = vals[s], s
		}
	})
	fmt.Printf("Pr{recover pristine ≤72h, cost ≤60}:   %.8f from pristine, %.8f from worst QoS state (%s)   (%v)\n",
		vals[0], worst, m.Name(worstState), time.Since(start).Round(time.Millisecond))

	// Which degraded states still guarantee cheap, fast recovery with high
	// probability?
	start = time.Now()
	sat, err := checker.Sat(logic.MustParse("P>=0.9 [ qos U{t<=72, r<=60} pristine ]"))
	if err != nil {
		return err
	}
	fmt.Printf("states with ≥0.9 recovery guarantee:   %d of %d   (%v)\n", sat.Len(), m.N(), time.Since(start).Round(time.Millisecond))
	return nil
}
