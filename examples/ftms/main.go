// Meyer-style performability of a degradable fault-tolerant multiprocessor
// (the motivating measure of the paper's introduction: refs [18–20]).
//
// A system starts with 4 processors. Each fails at rate 0.01/h; a single
// repair facility restores one processor at rate 0.5/h. With i processors
// operational the system delivers i units of work per hour (reward rate i);
// with 0 processors it is down and delivers nothing. Meyer's performability
// distribution is Pr{Y_t ≤ w}: the probability that the work accumulated by
// the mission time t stays below w.
//
// The program prints the performability distribution at mission time
// t = 100 h computed with the occupation-time procedure, cross-checked by
// the pseudo-Erlang approximation, and then answers a CSRL question that
// combines it with a state constraint.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/erlang"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sericola"
)

const (
	processors = 4
	failRate   = 0.01
	repairRate = 0.5
	mission    = 100.0
)

func buildSystem() (*mrm.MRM, error) {
	// State i = number of operational processors (0..4).
	n := processors + 1
	b := mrm.NewBuilder(n)
	for i := 1; i <= processors; i++ {
		b.Rate(i, i-1, float64(i)*failRate) // any of i processors fails
		b.Name(i, fmt.Sprintf("up%d", i))
		b.Reward(i, float64(i))
		b.Label(i, "operational")
		if i == processors {
			b.Label(i, "full")
		} else {
			b.Label(i, "degraded")
		}
	}
	b.Name(0, "down").Label(0, "down")
	for i := 0; i < processors; i++ {
		b.Rate(i, i+1, repairRate) // single repair facility
	}
	b.InitialState(processors)
	return b.Build()
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	m, err := buildSystem()
	if err != nil {
		return err
	}
	all := mrm.NewStateSet(m.N()).Complement()

	fmt.Printf("Meyer performability distribution, mission time t = %g h\n", mission)
	fmt.Printf("(maximum possible work: %g units)\n\n", float64(processors)*mission)
	fmt.Printf("  %-10s %-22s %-22s\n", "w", "Pr{Y_t <= w} (sericola)", "pseudo-Erlang k=512")
	for _, frac := range []float64{0.80, 0.85, 0.90, 0.925, 0.95, 0.975, 0.99, 0.999} {
		w := frac * float64(processors) * mission
		res, err := sericola.ReachProbAll(m, all, mission, w, sericola.Options{Epsilon: 1e-9})
		if err != nil {
			return err
		}
		ev, err := erlang.ReachProb(m, all, mission, w, erlang.Options{K: 512})
		if err != nil {
			return err
		}
		fmt.Printf("  %-10.1f %-22.8f %-22.8f\n", w, res.Values[m.InitialState()], ev)
	}

	// The same machinery through CSRL: from every degraded or down state,
	// what is the probability of climbing back to full capacity within
	// 10 hours while the degraded system performs at most 30 units of
	// (lower-quality) work on the way? The reward bound acts as a quality
	// budget on the recovery phase.
	checker := core.New(m, core.DefaultOptions())
	query := logic.MustParse("P=? [ (degraded | down) U{t<=10, r<=30} full ]")
	vals, err := checker.Values(query)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s\n", query)
	for s := 0; s < m.N(); s++ {
		fmt.Printf("  from %-6s: %0.8f\n", m.Name(s), vals[s])
	}
	if vals[m.StateIndex("down")] >= vals[m.StateIndex("up3")] {
		return fmt.Errorf("recovery from down should be harder than from up3")
	}

	// Long-run availability through the steady-state operator.
	steadyVals, err := checker.Values(logic.MustParse("S=? [ operational ]"))
	if err != nil {
		return err
	}
	fmt.Printf("\nlong-run availability: %0.8f\n", steadyVals[m.InitialState()])
	if steadyVals[0] < 0.99 {
		return fmt.Errorf("unexpectedly low availability %v", steadyVals[0])
	}
	if math.IsNaN(steadyVals[0]) {
		return fmt.Errorf("availability is NaN")
	}
	return nil
}
