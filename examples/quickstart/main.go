// Quickstart: build a three-state Markov reward model by hand, parse a few
// CSRL formulas, and check them with each of the paper's procedures.
//
// The model is a small repairable component:
//
//	up --(fail 0.1)--> degraded --(crash 0.05)--> down
//	       ^                |
//	       +--(repair 2)----+
//
// with power-draw rewards 5 (up), 8 (degraded, repair in progress), 1 (down).
package main

import (
	"fmt"
	"log"

	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build the MRM.
	b := mrm.NewBuilder(3)
	b.Name(0, "up").Name(1, "degraded").Name(2, "down")
	b.Rate(0, 1, 0.1)  // fail
	b.Rate(1, 0, 2)    // repair
	b.Rate(1, 2, 0.05) // crash
	b.Reward(0, 5).Reward(1, 8).Reward(2, 1)
	b.Label(0, "operational")
	b.Label(1, "operational")
	b.Label(2, "failed")
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		return err
	}

	// 2. Create a checker (the occupation-time procedure is the default
	// for time- and reward-bounded untils).
	checker := core.New(m, core.DefaultOptions())

	// 3. Parse and check formulas.
	formulas := []string{
		// Plain reachability: is a crash even possible?
		"P>0 [ F failed ]",
		// Time-bounded: crash within 100 hours with more than 1% chance?
		"P>0.01 [ F{t<=100} failed ]",
		// Reward-bounded (duality): crash before drawing 400 units of energy?
		"P>0.01 [ F{r<=400} failed ]",
		// The paper's P3 class: crash within 100 hours AND within an energy
		// budget of 400, passing only through operational states.
		"P>0.01 [ operational U{t<=100, r<=400} failed ]",
		// Steady state: the component is mostly up in the long run... until
		// it crashes for good, so the long-run operational probability is 0.
		"S<0.5 [ operational ]",
		// Globally (rewritten through F): stay operational for a day.
		"P>=0.9 [ G{t<=24} operational ]",
	}
	for _, src := range formulas {
		f, err := logic.Parse(src)
		if err != nil {
			return fmt.Errorf("parse %q: %w", src, err)
		}
		holds, err := checker.Check(f)
		if err != nil {
			return fmt.Errorf("check %q: %w", src, err)
		}
		fmt.Printf("%-64s -> %v\n", f, holds)
	}

	// 4. Query the numeric values behind the last decision.
	vals, err := checker.Values(logic.MustParse(
		"P=? [ operational U{t<=100, r<=400} failed ]"))
	if err != nil {
		return err
	}
	fmt.Println()
	for s := 0; s < m.N(); s++ {
		fmt.Printf("Pr{crash ≤100h, energy ≤400 | start %-8s} = %0.6f\n", m.Name(s), vals[s])
	}
	return nil
}
