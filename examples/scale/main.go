// The scale pipeline end to end: generate a parametric workstation-cluster
// SRN past 10^5 markings (-n 224 gives 101 250), model-check a time-bounded
// availability property with the truncated forward sweep, and print the
// error ledger proving the dropped probability mass stayed inside the
// accuracy budget. Compare with examples/cluster, which runs the richer
// impulse-reward queries on a ~600-state instance; this example is about
// head-room — the same checker API at three more orders of magnitude.
//
//	go run ./examples/scale -n 224
//	go run ./examples/scale -n 100 -dense
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/performability/csrl/internal/cluster"
	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/obs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	n := flag.Int("n", 224, "workstations per side (2·(n+1)² reachable markings)")
	truncate := flag.Float64("truncate", 1e-14, "per-state drop threshold for the forward sweeps")
	dense := flag.Bool("dense", false, "also run the dense untruncated check for contrast")
	flag.Parse()

	p, err := cluster.Default(*n)
	if err != nil {
		return err
	}
	start := time.Now()
	m, err := p.Build()
	if err != nil {
		return err
	}
	fmt.Printf("cluster N=%d: %d reachable markings (generated in %v)\n\n",
		*n, m.N(), time.Since(start).Round(time.Millisecond))

	// Does the probability of losing the cluster — backbone down or either
	// side exhausted — within four days stay below 2.1%?
	formula := logic.MustParse("P<=0.021 [ !down U{t<=96} down ]")

	// Lumping (on by default) is its own speed-up with its own build cost;
	// keep it out of both legs so the timing contrast isolates the sweep.
	opts := core.DefaultOptions()
	opts.Epsilon = 1e-8
	opts.Truncate = *truncate
	opts.Lump = core.LumpOff
	opts.Obs = obs.New()
	checker := core.New(m, opts)

	start = time.Now()
	holds, err := checker.Check(formula)
	if err != nil {
		return err
	}
	truncTime := time.Since(start)
	fmt.Printf("%s\n  holds: %v   (%v, truncated forward sweep)\n\n", formula, holds, truncTime.Round(time.Millisecond))

	rep := checker.NumericsReport()
	fmt.Printf("error ledger: total %.3g <= eps %g: %v\n", rep.BudgetTotal, opts.Epsilon, rep.BudgetOK)
	for _, c := range rep.Budget {
		fmt.Printf("  %-28s %.3g\n", c.Component+"/"+c.Term, c.Amount)
	}
	fmt.Printf("peak active window: %.0f of %d states; %d states dropped\n\n",
		rep.Gauges["truncation.active-window"], m.N(), rep.Counters["truncation.dropped-states"])

	if *dense {
		dopts := core.DefaultOptions()
		dopts.Epsilon = 1e-8
		dopts.Lump = core.LumpOff
		dchecker := core.New(m, dopts)
		start = time.Now()
		dholds, err := dchecker.Check(formula)
		if err != nil {
			return err
		}
		denseTime := time.Since(start)
		fmt.Printf("dense untruncated check: holds=%v in %v (%.1fx slower)\n",
			dholds, denseTime.Round(time.Millisecond), float64(denseTime)/float64(truncTime))
	}
	return nil
}
