// The paper's case study end to end (Section 5): a battery-powered mobile
// station in an ad-hoc network, modelled as the stochastic reward net of
// Figure 2 with the rates and power rewards of Table 1.
//
// The program builds the SRN, generates its 9-state Markov reward model,
// applies the Theorem 1 reduction for property Q3, and evaluates the
// properties Q1–Q3 with all three computational procedures of Section 4,
// cross-checked by Monte-Carlo simulation.
package main

import (
	"fmt"
	"log"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/sim"
	"github.com/performability/csrl/internal/srn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The SRN of Figure 2 and its reachability graph.
	net, init := adhoc.Net()
	model, markings, err := net.BuildMRM(init, srn.Options{Reward: adhoc.Power})
	if err != nil {
		return err
	}
	fmt.Printf("SRN: %d places, %d transitions -> %d states\n\n", len(net.Places), len(net.Transitions), len(markings))

	// Properties of Section 5.3. Q1 and Q2 are single-bounded ("well
	// investigated", the paper notes); Q3 is the new P3 class.
	properties := []struct {
		name    string
		formula string
	}{
		{"Q1", "P>0.5 [ F{r<=600} call_incoming ]"},
		{"Q2", "P>0.5 [ F{t<=24} call_incoming ]"},
		{"Q3", "P>0.5 [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]"},
	}
	algorithms := []core.Algorithm{core.AlgSericola, core.AlgErlang, core.AlgDiscretise}
	for _, p := range properties {
		fmt.Printf("%s: %s\n", p.name, p.formula)
		for _, alg := range algorithms {
			opts := core.DefaultOptions()
			opts.P3 = alg
			opts.ErlangK = 1024
			opts.DiscretiseStep = 1.0 / 64
			checker := core.New(model, opts)
			query := "P=?" + p.formula[len("P>0.5"):]
			vals, err := checker.Values(logic.MustParse(query))
			if err != nil {
				return fmt.Errorf("%s via %v: %w", p.name, alg, err)
			}
			holds, err := checker.Check(logic.MustParse(p.formula))
			if err != nil {
				return err
			}
			fmt.Printf("  %-16v probability %0.8f, holds: %v\n", alg, vals[0], holds)
			if p.name != "Q3" {
				break // Q1/Q2 do not exercise the P3 procedures; one run suffices
			}
		}
		fmt.Println()
	}

	// Independent confirmation of Q3 by simulating the until formula
	// directly on the full model — no Theorem 1 reduction involved.
	s := sim.New(model, 2026)
	phi := model.Label("call_idle").Union(model.Label("doze"))
	psi := model.Label("call_initiated")
	est, err := s.UntilProb(0, phi, psi, adhoc.Q3TimeBound, adhoc.Q3RewardBound, 500_000)
	if err != nil {
		return err
	}
	fmt.Printf("Q3 by direct path simulation: %v\n", est)
	fmt.Printf("(paper's Table 2 value %0.8f corresponds to r = %g; see EXPERIMENTS.md)\n",
		adhoc.PaperQ3Value, adhoc.Q3PaperRewardBound)
	return nil
}
