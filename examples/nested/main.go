// Nested CSRL formulas on a small workstation cluster, demonstrating the
// nesting of state and path formulas that Section 2.4 of the paper points
// out (and that distinguishes CSRL from the path-based reward variables of
// Obal & Sanders): the goal set of an outer until is itself defined by an
// inner probabilistic operator.
//
// The cluster has two workstations and one repair unit. Each workstation
// fails at rate 0.05/h; repair takes rate 1/h and serves one machine at a
// time. Rewards model the cluster's power draw: 120 per running machine,
// 200 extra while repairing.
package main

import (
	"fmt"
	"log"

	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/srn"
)

func buildCluster() (*mrm.MRM, error) {
	const (
		up = iota
		down
	)
	net := &srn.Net{
		Places: []string{"up", "down"},
		Transitions: []srn.Transition{
			{
				Name: "fail",
				In:   []srn.Arc{{Place: up, Weight: 1}},
				Out:  []srn.Arc{{Place: down, Weight: 1}},
				// Each running machine fails independently.
				RateFn: func(m srn.Marking) float64 { return 0.05 * float64(m[up]) },
			},
			{
				Name: "repair",
				In:   []srn.Arc{{Place: down, Weight: 1}},
				Out:  []srn.Arc{{Place: up, Weight: 1}},
				Rate: 1,
			},
		},
	}
	init := srn.Marking{2, 0}
	m, _, err := net.BuildMRM(init, srn.Options{
		Reward: func(mk srn.Marking) float64 {
			r := 120 * float64(mk[up])
			if mk[down] > 0 {
				r += 200 // the repair unit draws power while busy
			}
			return r
		},
		Labels: func(mk srn.Marking) []string {
			switch {
			case mk[up] == 2:
				return []string{"healthy"}
			case mk[up] == 1:
				return []string{"degraded"}
			default:
				return []string{"outage"}
			}
		},
	})
	return m, err
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	m, err := buildCluster()
	if err != nil {
		return err
	}
	checker := core.New(m, core.DefaultOptions())

	fmt.Printf("cluster model: %d states\n\n", m.N())

	// Inner formula: a state is "safe" if, from it, an outage within the
	// next 5 hours is unlikely. With the chosen rates this separates the
	// healthy state (≈0.02) from the degraded one (≈0.07).
	inner := "P<0.05 [ F{t<=5} outage ]"
	satInner, err := checker.Sat(logic.MustParse(inner))
	if err != nil {
		return err
	}
	fmt.Printf("Sat(%s):\n", inner)
	for s := 0; s < m.N(); s++ {
		fmt.Printf("  %-10s safe=%v\n", m.Name(s), satInner.Contains(s))
	}

	// Nested: within 5 hours and an energy budget of 2000, reach a safe
	// state while staying out of outage the whole way. The inner operator
	// is evaluated first (bottom-up traversal of the parse tree, §3), then
	// its satisfaction set becomes the goal of the outer P3-type until.
	nested := fmt.Sprintf("P=? [ !outage U{t<=5, r<=2000} (%s) ]", inner)
	vals, err := checker.Values(logic.MustParse(nested))
	if err != nil {
		return err
	}
	fmt.Printf("\n%s\n", nested)
	for s := 0; s < m.N(); s++ {
		fmt.Printf("  from %-10s: %0.8f\n", m.Name(s), vals[s])
	}

	// Doubly nested, mixing the steady-state operator into the state level:
	// does the cluster, in the long run, spend at least 85% of its time in
	// states that are safe in the inner sense?
	steady := fmt.Sprintf("S>=0.85 [ %s ]", inner)
	holds, err := checker.Check(logic.MustParse(steady))
	if err != nil {
		return err
	}
	fmt.Printf("\n%s -> %v\n", steady, holds)
	return nil
}
